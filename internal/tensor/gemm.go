package tensor

import (
	"scaledl/internal/par"
)

// This file is the packed, register-tiled GEMM engine. Every matrix-product
// variant in the module — plain, accumulating, either-operand-transposed,
// bias-fused — funnels into one blocked kernel (gemmRun) instead of five
// ad-hoc loop nests: the transposed layouts are absorbed while packing the
// operands (pack.go), so the gradient-path products run exactly as fast as
// the forward one, and the bias add of the conv/dense layers rides along in
// the store epilogue instead of a second pass over the output.
//
// # Determinism
//
// Every element of C is the k-ordered sum Σ_p A[i][p]·B[p][j]: the
// micro-kernel accumulates p strictly in order inside a KC panel, and the
// panels are applied in order by the serial pc loop. Parallel fan-out
// partitions only the M dimension (static par.ChunkRanges tiles), so each
// output element is produced entirely by one task with the same summation
// order as a serial run — results are bit-identical across pool widths,
// scheduling, and par.SetSerial, which is stronger than the per-width
// contract the rest of the module needs.

// gemmParallelFlops is the multiply-accumulate count above which a single
// GEMM fans its row tiles out across the par pool. Below it (every per-image
// conv GEMM in the model zoo) goroutine dispatch costs more than it saves,
// and the engine stays strictly allocation-free.
const gemmParallelFlops = 1 << 21

// gemmScratch recycles the packing buffers; see par.Arena. After warm-up the
// hot path performs zero allocations per call (pinned by TestGEMMZeroAllocs).
var gemmScratch par.Arena[float32]

// gemmOp describes one C = α-less GEMM: C (m×n, row stride ldc) gains A·B
// with A read through strides (rsA, csA) as a logical m×k matrix and B
// through (rsB, csB) as a logical k×n one. acc accumulates into C instead of
// overwriting; biasRow/biasCol (mutually exclusive, only with acc=false)
// fold a per-row or per-column bias into the first store.
type gemmOp struct {
	c        []float32
	ldc      int
	a        []float32
	rsA, csA int
	b        []float32
	rsB, csB int
	m, n, k  int
	acc      bool
	biasRow  []float32
	biasCol  []float32
}

// MatMul computes C = A·B for row-major matrices. A is m×k, B is k×n, and C
// must be m×n.
func MatMul(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, false, false)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k})
}

// MatMulAdd computes C += A·B (accumulating into C).
func MatMulAdd(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, false, false)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k, acc: true})
}

// MatMulBiasRow computes C = A·B + bias with bias broadcast along rows:
// C[i][j] = (A·B)[i][j] + bias[i]. It is the conv-forward epilogue (one bias
// per filter row) fused into the GEMM store.
func MatMulBiasRow(c, a, b *Tensor, bias []float32) {
	m, n, k := checkMatMul(c, a, b, false, false)
	if len(bias) != m {
		panic("tensor: MatMulBiasRow bias length mismatch")
	}
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k, biasRow: bias})
}

// MatMulTransA computes C = Aᵀ·B where A is stored k×m (so Aᵀ is m×k) and B
// is k×n. The transposition is absorbed at pack time.
func MatMulTransA(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, true, false)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: 1, csA: m, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k})
}

// MatMulAddTransA computes C += Aᵀ·B where A is stored k×m and B is k×n.
// This is the dense-layer weight-gradient kernel (dW += dYᵀ·X) without any
// temporary.
func MatMulAddTransA(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, true, false)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: 1, csA: m, b: b.Data, rsB: n, csB: 1, m: m, n: n, k: k, acc: true})
}

// MatMulTransB computes C = A·Bᵀ where A is m×k and B is stored n×k.
func MatMulTransB(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, false, true)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: 1, csB: k, m: m, n: n, k: k})
}

// MatMulTransBBiasCol computes C = A·Bᵀ + bias with bias broadcast along
// columns: C[i][j] = (A·Bᵀ)[i][j] + bias[j]. It is the dense-forward
// epilogue (one bias per output unit) fused into the GEMM store.
func MatMulTransBBiasCol(c, a, b *Tensor, bias []float32) {
	m, n, k := checkMatMul(c, a, b, false, true)
	if len(bias) != n {
		panic("tensor: MatMulTransBBiasCol bias length mismatch")
	}
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: 1, csB: k, m: m, n: n, k: k, biasCol: bias})
}

// MatMulAdd2TransB computes C += A·Bᵀ where A is m×k and B is stored n×k,
// accumulating into C. This is the convolution weight-gradient kernel
// (dW += dy·colsᵀ).
func MatMulAdd2TransB(c, a, b *Tensor) {
	m, n, k := checkMatMul(c, a, b, false, true)
	gemmRun(gemmOp{c: c.Data, ldc: n, a: a.Data, rsA: k, csA: 1, b: b.Data, rsB: 1, csB: k, m: m, n: n, k: k, acc: true})
}

// checkMatMul validates the operand shapes of a (possibly transposed)
// product and returns the logical (m, n, k).
func checkMatMul(c, a, b *Tensor, transA, transB bool) (m, n, k int) {
	m, k = a.Shape[0], a.Shape[1]
	if transA {
		k, m = m, k
	}
	kb, n := b.Shape[0], b.Shape[1]
	if transB {
		n, kb = kb, n
	}
	if k != kb {
		panic("tensor: MatMul inner dimension mismatch")
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMul output shape mismatch")
	}
	return m, n, k
}

// gemmRun drives the blocked loops: jc over N in NC slabs, pc over K in KC
// panels (B packed once per slab×panel), then the M dimension — fanned out
// over the pool in static row-tile chunks when the product is big enough —
// packs A in MC blocks and sweeps the micro-kernel.
func gemmRun(op gemmOp) {
	m, n, k := op.m, op.n, op.k
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		gemmEpilogueOnly(op)
		return
	}
	mTiles := (m + MR - 1) / MR
	var chunks [][2]int
	if par.Width() > 1 && mTiles >= 2 && m*n*k >= gemmParallelFlops {
		chunks = par.ChunkRanges(mTiles)
	}
	nChunks := len(chunks)
	if nChunks == 0 {
		nChunks = 1
	}
	kcMax := k
	if kcMax > KC {
		kcMax = KC
	}
	ncMax := (n + NR - 1) / NR * NR
	if ncMax > NC {
		ncMax = NC
	}
	aMax := mTiles * MR
	if aMax > MC {
		aMax = MC
	}
	aMax *= kcMax
	buf := gemmScratch.Get(ncMax*kcMax + nChunks*aMax)
	bBuf := buf[:ncMax*kcMax]
	aBufs := buf[ncMax*kcMax:]
	for jc := 0; jc < n; jc += NC {
		nc := n - jc
		if nc > NC {
			nc = NC
		}
		for pc := 0; pc < k; pc += KC {
			kc := k - pc
			if kc > KC {
				kc = KC
			}
			packB(bBuf, op.b, op.rsB, op.csB, pc, jc, nc, kc)
			first := pc == 0
			if len(chunks) <= 1 {
				gemmChunk(op, aBufs[:aMax], bBuf, jc, pc, nc, kc, 0, mTiles, first)
			} else {
				gemmFanOut(op, aBufs, aMax, bBuf, jc, pc, nc, kc, chunks, first)
			}
		}
	}
	gemmScratch.Put(buf)
}

// gemmFanOut runs one (jc, pc) panel's row tiles across the pool. It lives
// apart from gemmRun so the serial path never materializes the closure (that
// would cost an allocation per call even when it isn't taken). Chunk
// boundaries come from par.ChunkRanges, so tile ownership is static and each
// chunk packs A into its own slice of the scratch buffer.
func gemmFanOut(op gemmOp, aBufs []float32, aMax int, bBuf []float32, jc, pc, nc, kc int, chunks [][2]int, first bool) {
	par.For(len(chunks), func(ci int) {
		gemmChunk(op, aBufs[ci*aMax:][:aMax], bBuf, jc, pc, nc, kc, chunks[ci][0], chunks[ci][1], first)
	})
}

// gemmChunk computes the row tiles [tileLo, tileHi) of one (jc, pc) panel:
// for each MC block it packs A and sweeps the packed B panels with the
// micro-kernel, storing each MR×NR register tile through storeTile.
func gemmChunk(op gemmOp, aBuf, bBuf []float32, jc, pc, nc, kc, tileLo, tileHi int, first bool) {
	rowEnd := tileHi * MR
	if rowEnd > op.m {
		rowEnd = op.m
	}
	var tile [MR * NR]float32
	for i0 := tileLo * MR; i0 < rowEnd; i0 += MC {
		mc := rowEnd - i0
		if mc > MC {
			mc = MC
		}
		packA(aBuf, op.a, op.rsA, op.csA, i0, pc, mc, kc)
		mcTiles := (mc + MR - 1) / MR
		for jr := 0; jr < nc; jr += NR {
			bp := bBuf[(jr/NR)*NR*kc:][:NR*kc]
			nrv := nc - jr
			if nrv > NR {
				nrv = NR
			}
			for ti := 0; ti < mcTiles; ti++ {
				microKernel(aBuf[ti*MR*kc:][:MR*kc], bp, kc, &tile)
				row := i0 + ti*MR
				mrv := op.m - row
				if mrv > MR {
					mrv = MR
				}
				storeTile(op, row, jc+jr, mrv, nrv, &tile, first)
			}
		}
	}
}

// storeTile writes the valid mr×nr region of a register tile into C. The
// first K panel overwrites (or seeds with the fused bias); later panels and
// accumulate-mode ops add.
func storeTile(op gemmOp, row, col, mr, nr int, t *[MR * NR]float32, first bool) {
	acc := op.acc || !first
	for i := 0; i < mr; i++ {
		ci := op.c[(row+i)*op.ldc+col:][:nr]
		ti := t[i*NR:][:nr]
		switch {
		case acc:
			for j, v := range ti {
				ci[j] += v
			}
		case op.biasRow != nil:
			br := op.biasRow[row+i]
			for j, v := range ti {
				ci[j] = v + br
			}
		case op.biasCol != nil:
			bc := op.biasCol[col:][:nr]
			for j, v := range ti {
				ci[j] = v + bc[j]
			}
		default:
			copy(ci, ti)
		}
	}
}

// gemmEpilogueOnly handles the degenerate k = 0 product: the sum over an
// empty K dimension is zero, so C is zeroed (or seeded with the bias) unless
// the op accumulates, in which case it is untouched.
func gemmEpilogueOnly(op gemmOp) {
	if op.acc {
		return
	}
	for i := 0; i < op.m; i++ {
		ci := op.c[i*op.ldc:][:op.n]
		switch {
		case op.biasRow != nil:
			br := op.biasRow[i]
			for j := range ci {
				ci[j] = br
			}
		case op.biasCol != nil:
			copy(ci, op.biasCol[:op.n])
		default:
			for j := range ci {
				ci[j] = 0
			}
		}
	}
}

// MatVec computes y = A·x for a row-major m×n matrix A, using the shared
// unrolled-accumulator dot product.
func MatVec(y []float32, a *Tensor, x []float32) {
	m, n := a.Shape[0], a.Shape[1]
	if len(x) != n || len(y) != m {
		panic("tensor: MatVec shape mismatch")
	}
	for i := 0; i < m; i++ {
		y[i] = dotUnroll(a.Data[i*n:(i+1)*n], x)
	}
}

// transposeBlock is the square tile edge of the cache-blocked Transpose:
// source and destination tiles (64×64 float32 = 16 KiB each) stay
// cache-resident together, so the stride-m writes stop thrashing on large
// matrices.
const transposeBlock = 64

// Transpose writes Aᵀ into dst. A is m×n, dst must be n×m. Within each cache
// block it moves a four-row strip of the source per sweep, so every strided
// destination step retires four contiguous writes instead of one. The strip
// height is its own constant (it must match the r0..r3 unroll below), not
// the register-tile height MR.
func Transpose(dst, a *Tensor) {
	const strip = 4
	m, n := a.Shape[0], a.Shape[1]
	if dst.Shape[0] != n || dst.Shape[1] != m {
		panic("tensor: Transpose shape mismatch")
	}
	d, s := dst.Data, a.Data
	for ii := 0; ii < m; ii += transposeBlock {
		iHi := ii + transposeBlock
		if iHi > m {
			iHi = m
		}
		for jj := 0; jj < n; jj += transposeBlock {
			jHi := jj + transposeBlock
			if jHi > n {
				jHi = n
			}
			i := ii
			for ; i+strip <= iHi; i += strip {
				r0 := s[i*n : i*n+n]
				r1 := s[(i+1)*n : (i+1)*n+n]
				r2 := s[(i+2)*n : (i+2)*n+n]
				r3 := s[(i+3)*n : (i+3)*n+n]
				di := jj*m + i
				for j := jj; j < jHi; j++ {
					d[di] = r0[j]
					d[di+1] = r1[j]
					d[di+2] = r2[j]
					d[di+3] = r3[j]
					di += m
				}
			}
			for ; i < iHi; i++ {
				row := s[i*n+jj : i*n+jHi]
				di := jj*m + i
				for _, v := range row {
					d[di] = v
					di += m
				}
			}
		}
	}
}
