//go:build amd64

package tensor

// microKernelSSE is the SSE2 assembly register tile (microkernel_amd64.s).
// Baseline SSE2 is architecturally guaranteed on amd64, so no feature
// detection is needed.
//
//go:noescape
func microKernelSSE(ap, bp *float32, kc int, t *[MR * NR]float32)

// microKernel computes one MR×NR tile t from packed panels ap/bp (kc depth).
// The assembly kernel performs the same unfused multiply-then-add per lane in
// the same k order as microKernelGo, so results are bit-identical across the
// two paths (TestMicroKernelAsmMatchesGo pins this).
func microKernel(ap, bp []float32, kc int, t *[MR * NR]float32) {
	if kc == 0 {
		*t = [MR * NR]float32{}
		return
	}
	microKernelSSE(&ap[0], &bp[0], kc, t)
}
