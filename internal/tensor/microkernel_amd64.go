//go:build amd64

package tensor

// Go-side wrappers of the amd64 assembly micro-kernels
// (microkernel_amd64.s). Each kernel computes one register tile (stored
// row-major at the tier's NR stride in the shared kernTile buffer) from
// packed operand panels; the kc == 0 degenerate case is handled here so the
// assembly loops can assume at least one k step.

// microKernelSSE is the SSE2 4×8 register tile (stride 8). Baseline SSE2 is
// architecturally guaranteed on amd64, so no feature detection is needed.
// It performs the same unfused multiply-then-add per lane in the same k
// order as microKernelGo, so the two are bit-identical
// (TestMicroKernelMatchesPortable pins this).
//
//go:noescape
func microKernelSSE(ap, bp *float32, kc int, t *kernTile)

// microKernelAVX2 is the AVX2+FMA 8×8 register tile (stride 8): eight YMM
// accumulator rows, one fused multiply-add per row per k step.
//
//go:noescape
func microKernelAVX2(ap, bp *float32, kc int, t *kernTile)

// microKernelAVX512 is the AVX-512 14×16 register tile (stride 16):
// fourteen ZMM accumulator rows fed by embedded-broadcast FMAs, the
// register-pressure-tuned shape (14 accumulators + 1 B vector + 1 spare of
// the 32-register file, double that tile's working set would spill).
//
//go:noescape
func microKernelAVX512(ap, bp *float32, kc int, t *kernTile)

// microKernelAVX512BF16 is the low-precision 14×16 tile over bf16-storage
// panels: packed uint16 lanes are widened to fp32 by a 16-bit left shift
// (exact — bf16 is truncated fp32) and accumulated with the same FMAs as
// the fp32 kernel.
//
//go:noescape
func microKernelAVX512BF16(ap, bp *uint16, kc int, t *kernTile)

// microKernelAVX512FP16 is the low-precision 14×16 tile over IEEE-half
// storage panels, decoded through VCVTPH2PS (exact) with fp32 accumulation.
//
//go:noescape
func microKernelAVX512FP16(ap, bp *uint16, kc int, t *kernTile)

// dotAVX2 and dotAVX512 are the vectorized dot products behind MatVec and
// the quant codecs' reductions: fixed lane-split accumulation (4 vector
// accumulators, deterministic reduction tree), FMA inside a lane.
//
//go:noescape
func dotAVX2(a, b *float32, n int) float32

//go:noescape
func dotAVX512(a, b *float32, n int) float32

func microKernelSSEWrap(ap, bp []float32, kc int, t *kernTile) {
	if kc == 0 {
		zeroTile(t, 4*8)
		return
	}
	microKernelSSE(&ap[0], &bp[0], kc, t)
}

func microKernelAVX2Wrap(ap, bp []float32, kc int, t *kernTile) {
	if kc == 0 {
		zeroTile(t, 8*8)
		return
	}
	microKernelAVX2(&ap[0], &bp[0], kc, t)
}

func microKernelAVX512Wrap(ap, bp []float32, kc int, t *kernTile) {
	if kc == 0 {
		zeroTile(t, 14*16)
		return
	}
	microKernelAVX512(&ap[0], &bp[0], kc, t)
}

func microKernelBF16Wrap(ap, bp []uint16, kc int, t *kernTile) {
	if kc == 0 {
		zeroTile(t, 14*16)
		return
	}
	microKernelAVX512BF16(&ap[0], &bp[0], kc, t)
}

func microKernelFP16Wrap(ap, bp []uint16, kc int, t *kernTile) {
	if kc == 0 {
		zeroTile(t, 14*16)
		return
	}
	microKernelAVX512FP16(&ap[0], &bp[0], kc, t)
}

func dotAVX2Wrap(a, b []float32) float32 {
	if len(a) == 0 {
		return 0
	}
	return dotAVX2(&a[0], &b[0], len(a))
}

func dotAVX512Wrap(a, b []float32) float32 {
	if len(a) == 0 {
		return 0
	}
	return dotAVX512(&a[0], &b[0], len(a))
}

func zeroTile(t *kernTile, n int) {
	for i := range t[:n] {
		t[i] = 0
	}
}
