package tensor

// Cache-blocking parameters of the packed GEMM engine and its neighbors,
// following the BLIS/GotoBLAS hierarchy the paper's KNL kernels are built on
// (You, Buluç & Demmel §4: cache blocking plus vectorization is what lifts
// single-node efficiency toward peak). Every blocking decision in the
// package — the per-tier GEMM blocks, the Transpose tile, the Im2col
// tap-blocking — derives from the two cache budgets below, so a kernel-tier
// change can never leave pack, transpose and im2col disagreeing about what
// fits where.
//
// The five loops around the micro-kernel partition C into NC-wide column
// slabs, the K dimension into KC-deep panels, and the M dimension into
// MC-tall blocks; inside a block the micro-kernel computes one MR×NR
// register tile per call from packed operand panels:
//
//	packed A panel: MR rows  × KC depth, laid out p-major (MR floats per k)
//	packed B panel: KC depth × NR cols, laid out p-major (NR floats per k)
//
// MR×NR is sized to the register file of the selected tier (see
// microkernel.go), KC so one KC×NR packed B panel stays L1-resident while
// streaming, MC so the packed MC×KC A block stays L2-resident, and NC bounds
// the packed B slab. This mirrors the paper's MCDRAM/L2 blocking discussion
// at CPU-cache scale.
const (
	// l1Budget and l2Budget are the conservative per-core cache budgets all
	// blocking below is derived from. 32 KiB L1d is the x86 floor of the
	// last two decades; 512 KiB undershoots every modern L2 so packed A
	// blocks never thrash.
	l1Budget = 32 << 10
	l2Budget = 512 << 10

	// maxMR and maxNR bound every tier's register tile; the shared
	// micro-kernel output buffer (kernTile) is sized by them.
	maxMR = 16
	maxNR = 16
)

// kernTile is the micro-kernel output buffer shared by all tiers: tier
// (mr, nr) tiles are stored row-major at stride nr in its prefix. 1 KiB,
// lives on the gemmChunk stack.
type kernTile = [maxMR * maxNR]float32

// Blocking is one tier's cache-blocking parameter set.
type Blocking struct {
	// MR and NR are the register-tile height and width: the C rows and
	// columns produced per micro-kernel call.
	MR, NR int
	// MC is the M-dimension cache block: rows of A packed per L2-resident
	// block. Always a multiple of MR.
	MC int
	// KC is the K-dimension cache block: depth of the packed A/B panels.
	KC int
	// NC is the N-dimension cache block: columns of B packed per slab.
	// Always a multiple of NR.
	NC int
}

// blockingFor derives a tier's cache blocks from its register tile and the
// shared cache budgets: KC so the streamed KC×NR B panel uses at most half
// of L1 (the other half covers the A micro-panel and the output tile), MC
// so the packed MC×KC A block fills at most half of L2, NC fixed at 1024
// columns rounded to the tile width.
func blockingFor(mr, nr int) Blocking {
	if mr < 1 || mr > maxMR || nr < 1 || nr > maxNR {
		panic("tensor: register tile exceeds kernTile bounds")
	}
	kc := l1Budget / 2 / (4 * nr)
	if kc > 256 {
		kc = 256 // beyond this, packing granularity beats marginal reuse
	}
	mc := l2Budget / 2 / (4 * kc)
	mc -= mc % mr
	nc := 1024
	nc -= nc % nr
	return Blocking{MR: mr, NR: nr, MC: mc, KC: kc, NC: nc}
}

// transposeBlock is the square tile edge of the cache-blocked Transpose:
// source and destination tiles stay L1-resident together, which is exactly
// the l1Budget with 4-byte elements (2·64²·4 B = 32 KiB).
const transposeBlock = 64

// transposeStrip is the source-row strip Transpose moves per sweep; it must
// match the literal r0..r3 unroll in Transpose.
const transposeStrip = 4

// im2colSrcBudget is the Im2col/Col2im tap-blocking threshold: when the
// source rows touched by one output-row block exceed this many floats, the
// tap loops are blocked over output rows so each block's source rows are
// re-read from L1 across all kh·kw kernel taps instead of from L2 across
// the whole image. Half the L1 budget, leaving the other half for the
// destination stream.
const im2colSrcBudget = l1Budget / 2 / 4

// im2colRowBlock returns the output-row block height for an image of width
// w with kernel height kh and the given stride: the largest block whose
// touched source rows ((block-1)·stride + kh rows of w floats) fit the
// Im2col source budget, at least 1.
func im2colRowBlock(w, kh, stride int) int {
	rows := im2colSrcBudget / w
	if rows < 1 {
		rows = 1
	}
	block := (rows - kh) / stride
	block++ // (block-1)·stride + kh ≤ rows
	if block < 1 {
		block = 1
	}
	return block
}
