package tensor

import (
	"math"
	"testing"

	"scaledl/internal/par"
)

// TestBF16Conversions pins the bf16 encode/decode pair: decode is exact,
// encode rounds to nearest even, and specials survive.
func TestBF16Conversions(t *testing.T) {
	// Exactly representable values round-trip bit-perfectly.
	for _, v := range []float32{0, 1, -1, 0.5, -2.25, 128, 1e20, -1e-20} {
		enc := f32ToBF16(v)
		if got := bf16ToF32(enc); math.Float32bits(got) != math.Float32bits(f32ToBF16RefDecode(enc)) {
			t.Fatalf("decode mismatch for %v", v)
		}
	}
	if bf16ToF32(f32ToBF16(1)) != 1 {
		t.Fatal("1.0 must be bf16-exact")
	}
	// Round to nearest even on the dropped 16 bits: the bf16 step above 1 is
	// 2^-7 (7 mantissa bits), so 1 + 2^-8 is an exact tie and rounds to even
	// (1.0), anything above the tie rounds up, and the tie above the odd
	// neighbor 1 + 2^-7 rounds away to 1 + 2^-6.
	tie := float32(1 + 1.0/256)
	if got := bf16ToF32(f32ToBF16(tie)); got != 1 {
		t.Fatalf("tie 1+2^-8: got %v want 1 (round to even)", got)
	}
	up := math.Float32frombits(math.Float32bits(tie) + 1)
	if got := bf16ToF32(f32ToBF16(up)); got != 1+1.0/128 {
		t.Fatalf("above tie: got %v want %v", got, 1+1.0/128)
	}
	if got := bf16ToF32(f32ToBF16(1 + 3.0/256)); got != 1+1.0/64 {
		t.Fatalf("tie above odd: got %v want %v (round to even)", got, 1+1.0/64)
	}
	// Specials.
	if got := bf16ToF32(f32ToBF16(float32(math.Inf(1)))); !math.IsInf(float64(got), 1) {
		t.Fatalf("+Inf: got %v", got)
	}
	if got := bf16ToF32(f32ToBF16(float32(math.NaN()))); !math.IsNaN(float64(got)) {
		t.Fatalf("NaN must stay NaN, got %v", got)
	}
	// Near-overflow values must not round past Inf.
	big := math.Float32frombits(0x7f7fffff) // max finite fp32
	if got := bf16ToF32(f32ToBF16(big)); math.IsNaN(float64(got)) {
		t.Fatalf("max finite fp32: got NaN")
	}
}

// f32ToBF16RefDecode mirrors the decode identity used in the test above.
func f32ToBF16RefDecode(h uint16) float32 { return math.Float32frombits(uint32(h) << 16) }

// TestFP16Exhaustive round-trips every IEEE binary16 bit pattern: decode to
// fp32 (exact by construction) then re-encode must reproduce the original
// pattern (NaNs may canonicalize but must stay NaN).
func TestFP16Exhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		f := fp16ToF32(uint16(h))
		back := f32ToFP16(f)
		if math.IsNaN(float64(f)) {
			if back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("%#04x: NaN re-encoded as %#04x (not NaN)", h, back)
			}
			continue
		}
		if back != uint16(h) {
			t.Fatalf("%#04x: decode %v re-encodes to %#04x", h, f, back)
		}
	}
}

// TestFP16Rounding pins encode rounding and range behavior.
func TestFP16Rounding(t *testing.T) {
	cases := []struct {
		in   float32
		want uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},        // max finite half
		{65520, 0x7c00},        // rounds past max → +Inf
		{100000, 0x7c00},       // overflow → +Inf
		{-100000, 0xfc00},      // overflow → -Inf
		{5.9604645e-8, 0x0001}, // min subnormal (2^-24)
		{4.4e-8, 0x0001},       // in (2^-25, 2^-24): rounds up, not flushed
		{2.9802322e-8, 0x0000}, // 2^-25: tie → even → +0
		{1e-10, 0x0000},        // underflow → +0
		{1 + 1.0/2048, 0x3c00}, // exact tie rounds to even
		{1 + 3.0/2048, 0x3c02}, // tie above odd rounds up
	}
	for _, c := range cases {
		if got := f32ToFP16(c.in); got != c.want {
			t.Errorf("f32ToFP16(%v) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

// TestParsePrecision checks the config-string mapping.
func TestParsePrecision(t *testing.T) {
	for s, want := range map[string]Precision{
		"": Float32, "fp32": Float32, "float32": Float32,
		"bf16": BFloat16, "bfloat16": BFloat16,
		"fp16": Float16, "float16": Float16, "half": Float16,
	} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePrecision("int8"); err == nil {
		t.Error("ParsePrecision(int8) must fail")
	}
}

// lpRef computes the float64 reference for a low-precision product: the
// operands narrowed through the storage format (exactly what packing does),
// then a k-ordered float64 accumulation. The engine's fp32 accumulation of
// those same decoded values must land within plain fp32 rounding of it.
func lpRef(c, a, b *Tensor, enc func(float32) uint16, dec func(uint16) float32) {
	m, n := c.Shape[0], c.Shape[1]
	k := a.Shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(dec(enc(a.Data[i*k+p]))) * float64(dec(enc(b.Data[p*n+j])))
			}
			c.Data[i*n+j] = float32(s)
		}
	}
}

// TestLowPrecisionGEMMMatchesNarrowedRef validates the bf16 and fp16 compute
// paths on every tier: the engine must match the narrow-then-accumulate
// reference to fp32 rounding (the storage narrowing is the only semantic
// difference from the fp32 path), which pins both the conversions inside the
// packers and the low-precision micro-kernels, assembly and portable alike.
func TestLowPrecisionGEMMMatchesNarrowedRef(t *testing.T) {
	precs := []struct {
		name string
		p    Precision
		enc  func(float32) uint16
		dec  func(uint16) float32
	}{
		{"bf16", BFloat16, f32ToBF16, bf16ToF32},
		{"fp16", Float16, f32ToFP16, fp16ToF32},
	}
	for _, pr := range precs {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			forEachTier(t, func(t *testing.T) {
				prev := SetComputePrecision(pr.p)
				defer SetComputePrecision(prev)
				bl := KernelBlocking()
				g := NewRNG(48)
				shapes := [][3]int{
					{1, 1, 1}, {3, 5, 4}, {bl.MR + 1, bl.NR + 3, bl.KC + 2},
					{2*bl.MR + 3, 3*bl.NR + 5, 33}, {2, 3, 0},
				}
				for _, s := range shapes {
					m, n, k := s[0], s[1], s[2]
					a := randMat(g, m, k)
					b := randMat(g, k, n)
					got := randMat(g, m, n)
					MatMul(got, a, b)
					want := New(m, n)
					lpRef(want, a, b, pr.enc, pr.dec)
					tol := 1e-5 * math.Sqrt(float64(k)+1)
					if d := maxAbsDiff(got.Data, want.Data); float64(d) > tol {
						t.Errorf("%dx%dx%d: diff %v > %v", m, n, k, d, tol)
					}
				}
			})
		})
	}
}

// TestLowPrecisionErrorBounds is the property test pinning the storage
// formats' error against full precision: over random N(0,1) operands the
// low-precision result must deviate from the fp32 result by more than zero
// (the narrowing really happened) but stay within the format's analytic
// bound — relative per-product error ≤ 2^-8 for bf16 (7 mantissa bits + RNE)
// and ≤ 2^-11 for fp16, growing with √k for random-sign accumulation. A
// regression that decodes garbage blows the upper bound; one that silently
// computes in fp32 trips the lower.
func TestLowPrecisionErrorBounds(t *testing.T) {
	m, n, k := 24, 40, 200
	g := NewRNG(49)
	a := randMat(g, m, k)
	b := randMat(g, k, n)
	full := New(m, n)
	MatMul(full, a, b)

	for _, pr := range []struct {
		name    string
		p       Precision
		relStep float64
	}{
		{"bf16", BFloat16, 1.0 / 256},
		{"fp16", Float16, 1.0 / 2048},
	} {
		prev := SetComputePrecision(pr.p)
		got := New(m, n)
		MatMul(got, a, b)
		SetComputePrecision(prev)
		d := float64(maxAbsDiff(got.Data, full.Data))
		// Each product of two narrowed N(0,1) values carries ≤ ~2·relStep
		// relative error; k random-sign terms accumulate ~√k of it, with a
		// generous 8× safety factor over the expectation.
		bound := 8 * pr.relStep * math.Sqrt(float64(k))
		if d == 0 {
			t.Errorf("%s: result identical to fp32 — narrowing did not happen", pr.name)
		}
		if d > bound {
			t.Errorf("%s: max diff %v exceeds bound %v", pr.name, d, bound)
		}
	}
}

// TestLowPrecisionDeterministic extends the width-invariance contract to the
// low-precision path: the bf16 engine result is bit-identical across pool
// widths and serial mode, same as fp32.
func TestLowPrecisionDeterministic(t *testing.T) {
	prev := SetComputePrecision(BFloat16)
	defer SetComputePrecision(prev)
	defer func() {
		par.SetSerial(false)
		par.SetWidth(0)
	}()
	m, n, k := 160, 200, 80
	g := NewRNG(50)
	a := randMat(g, m, k)
	b := randMat(g, k, n)

	par.SetWidth(4)
	par.SetSerial(true)
	serial := New(m, n)
	MatMul(serial, a, b)
	par.SetSerial(false)

	for _, w := range []int{1, 2, 4} {
		par.SetWidth(w)
		c := New(m, n)
		MatMul(c, a, b)
		for i := range serial.Data {
			if serial.Data[i] != c.Data[i] {
				t.Fatalf("width %d differs from serial at %d", w, i)
			}
		}
	}
}

// TestLowPrecisionZeroAllocs pins the zero-allocation contract on the
// uint16-panel path too.
func TestLowPrecisionZeroAllocs(t *testing.T) {
	prev := SetComputePrecision(BFloat16)
	defer SetComputePrecision(prev)
	par.SetWidth(1)
	defer par.SetWidth(0)
	g := NewRNG(51)
	a := randMat(g, 20, 576)
	b := randMat(g, 576, 500)
	c := New(20, 500)
	run := func() { MatMul(c, a, b) }
	run() // warm the arena
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Errorf("bf16 MatMul: %v allocs/op in steady state, want 0", allocs)
	}
}
