package tensor

// Operand packing for the blocked GEMM engine. Both packers read the logical
// operand through (rowStride, colStride) pairs, so a transposed view costs
// nothing extra: MatMulTransA passes (1, m) instead of (k, 1) and the
// transposition is absorbed while the panel is being laid out — the
// micro-kernel only ever sees the one canonical panel format. Ragged edges
// are zero-padded up to the tier's MR/NR so the micro-kernel always runs a
// full register tile; the padding lanes contribute exact zeros and are
// simply not stored back.
//
// The panel geometry (mr, nr) is a parameter — each kernel tier packs for
// its own register tile — and each packer has a uint16 twin that encodes
// elements to bf16 or IEEE half on the way in (lowprec.go), halving the
// pack-buffer footprint for the low-precision compute path.

// packA packs the mc×kc block of the logical m×k matrix A starting at
// (i0, p0) into mr-row panels: dst[t*mr*kc + p*mr + i] holds logical
// A[i0+t*mr+i][p0+p]. Element (i, p) of the logical matrix lives at
// a[i*rs + p*cs]. Rows past mc are zero-filled.
func packA(dst, a []float32, rs, cs, i0, p0, mc, kc, mr int) {
	for t := 0; t*mr < mc; t++ {
		panel := dst[t*mr*kc:][: mr*kc : mr*kc]
		rows := mc - t*mr
		if rows > mr {
			rows = mr
		}
		base := (i0+t*mr)*rs + p0*cs
		if cs == 1 {
			// Row-major source: each logical row is contiguous in p.
			for i := 0; i < rows; i++ {
				src := a[base+i*rs:][:kc]
				for p, v := range src {
					panel[p*mr+i] = v
				}
			}
		} else {
			// Transposed source (rs == 1): each k column is contiguous in i.
			for p := 0; p < kc; p++ {
				src := a[base+p*cs:][:rows]
				for i, v := range src {
					panel[p*mr+i] = v
				}
			}
		}
		for i := rows; i < mr; i++ {
			for p := 0; p < kc; p++ {
				panel[p*mr+i] = 0
			}
		}
	}
}

// packB packs the kc×nc block of the logical k×n matrix B starting at
// (p0, j0) into nr-column panels: dst[u*nr*kc + p*nr + j] holds logical
// B[p0+p][j0+u*nr+j]. Element (p, j) lives at b[p*rs + j*cs]. Columns past
// nc are zero-filled.
func packB(dst, b []float32, rs, cs, p0, j0, nc, kc, nr int) {
	for u := 0; u*nr < nc; u++ {
		panel := dst[u*nr*kc:][: nr*kc : nr*kc]
		cols := nc - u*nr
		if cols > nr {
			cols = nr
		}
		base := p0*rs + (j0+u*nr)*cs
		if cs == 1 {
			// Row-major source: nr consecutive columns per k step.
			if cols == nr {
				for p := 0; p < kc; p++ {
					copy(panel[p*nr:p*nr+nr], b[base+p*rs:][:nr])
				}
			} else {
				for p := 0; p < kc; p++ {
					row := panel[p*nr : p*nr+nr]
					n := copy(row, b[base+p*rs:][:cols])
					for j := n; j < nr; j++ {
						row[j] = 0
					}
				}
			}
		} else {
			// Transposed source (rs == 1): each column is contiguous in p.
			for j := 0; j < cols; j++ {
				src := b[base+j*cs:][:kc]
				for p, v := range src {
					panel[p*nr+j] = v
				}
			}
			for j := cols; j < nr; j++ {
				for p := 0; p < kc; p++ {
					panel[p*nr+j] = 0
				}
			}
		}
	}
}

// packA16 is packA with on-the-fly narrowing: each element is encoded (bf16
// or IEEE half via enc) as it is laid into the panel. Zero padding encodes
// to bit pattern 0 in both formats, so the pad lanes stay exact zeros.
func packA16(dst []uint16, a []float32, rs, cs, i0, p0, mc, kc, mr int, enc func(float32) uint16) {
	for t := 0; t*mr < mc; t++ {
		panel := dst[t*mr*kc:][: mr*kc : mr*kc]
		rows := mc - t*mr
		if rows > mr {
			rows = mr
		}
		base := (i0+t*mr)*rs + p0*cs
		if cs == 1 {
			for i := 0; i < rows; i++ {
				src := a[base+i*rs:][:kc]
				for p, v := range src {
					panel[p*mr+i] = enc(v)
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				src := a[base+p*cs:][:rows]
				for i, v := range src {
					panel[p*mr+i] = enc(v)
				}
			}
		}
		for i := rows; i < mr; i++ {
			for p := 0; p < kc; p++ {
				panel[p*mr+i] = 0
			}
		}
	}
}

// packB16 is packB with on-the-fly narrowing via enc.
func packB16(dst []uint16, b []float32, rs, cs, p0, j0, nc, kc, nr int, enc func(float32) uint16) {
	for u := 0; u*nr < nc; u++ {
		panel := dst[u*nr*kc:][: nr*kc : nr*kc]
		cols := nc - u*nr
		if cols > nr {
			cols = nr
		}
		base := p0*rs + (j0+u*nr)*cs
		if cs == 1 {
			for p := 0; p < kc; p++ {
				row := panel[p*nr : p*nr+nr]
				src := b[base+p*rs:][:cols]
				for j, v := range src {
					row[j] = enc(v)
				}
				for j := cols; j < nr; j++ {
					row[j] = 0
				}
			}
		} else {
			for j := 0; j < cols; j++ {
				src := b[base+j*cs:][:kc]
				for p, v := range src {
					panel[p*nr+j] = enc(v)
				}
			}
			for j := cols; j < nr; j++ {
				for p := 0; p < kc; p++ {
					panel[p*nr+j] = 0
				}
			}
		}
	}
}
