package tensor

// Operand packing for the blocked GEMM engine. Both packers read the logical
// operand through (rowStride, colStride) pairs, so a transposed view costs
// nothing extra: MatMulTransA passes (1, m) instead of (k, 1) and the
// transposition is absorbed while the panel is being laid out — the
// micro-kernel only ever sees the one canonical panel format. Ragged edges
// are zero-padded up to MR/NR so the micro-kernel always runs a full
// register tile; the padding lanes contribute exact zeros and are simply not
// stored back.

// packA packs the mc×kc block of the logical m×k matrix A starting at
// (i0, p0) into MR-row panels: dst[t*MR*kc + p*MR + i] holds logical
// A[i0+t*MR+i][p0+p]. Element (i, p) of the logical matrix lives at
// a[i*rs + p*cs]. Rows past mc are zero-filled.
func packA(dst, a []float32, rs, cs, i0, p0, mc, kc int) {
	for t := 0; t*MR < mc; t++ {
		panel := dst[t*MR*kc:][: MR*kc : MR*kc]
		rows := mc - t*MR
		if rows > MR {
			rows = MR
		}
		base := (i0+t*MR)*rs + p0*cs
		if cs == 1 {
			// Row-major source: each logical row is contiguous in p.
			for i := 0; i < rows; i++ {
				src := a[base+i*rs:][:kc]
				for p, v := range src {
					panel[p*MR+i] = v
				}
			}
		} else {
			// Transposed source (rs == 1): each k column is contiguous in i.
			for p := 0; p < kc; p++ {
				src := a[base+p*cs:][:rows]
				for i, v := range src {
					panel[p*MR+i] = v
				}
			}
		}
		for i := rows; i < MR; i++ {
			for p := 0; p < kc; p++ {
				panel[p*MR+i] = 0
			}
		}
	}
}

// packB packs the kc×nc block of the logical k×n matrix B starting at
// (p0, j0) into NR-column panels: dst[u*NR*kc + p*NR + j] holds logical
// B[p0+p][j0+u*NR+j]. Element (p, j) lives at b[p*rs + j*cs]. Columns past
// nc are zero-filled.
func packB(dst, b []float32, rs, cs, p0, j0, nc, kc int) {
	for u := 0; u*NR < nc; u++ {
		panel := dst[u*NR*kc:][: NR*kc : NR*kc]
		cols := nc - u*NR
		if cols > NR {
			cols = NR
		}
		base := p0*rs + (j0+u*NR)*cs
		if cs == 1 {
			// Row-major source: NR consecutive columns per k step.
			if cols == NR {
				for p := 0; p < kc; p++ {
					copy(panel[p*NR:p*NR+NR], b[base+p*rs:][:NR])
				}
			} else {
				for p := 0; p < kc; p++ {
					row := panel[p*NR : p*NR+NR]
					n := copy(row, b[base+p*rs:][:cols])
					for j := n; j < NR; j++ {
						row[j] = 0
					}
				}
			}
		} else {
			// Transposed source (rs == 1): each column is contiguous in p.
			for j := 0; j < cols; j++ {
				src := b[base+j*cs:][:kc]
				for p, v := range src {
					panel[p*NR+j] = v
				}
			}
			for j := cols; j < NR; j++ {
				for p := 0; p < kc; p++ {
					panel[p*NR+j] = 0
				}
			}
		}
	}
}
