//go:build amd64

#include "textflag.h"

// Assembly micro-kernels of the packed GEMM engine, one per dispatch tier
// (see microkernel.go for the tier table and pack.go for the panel
// layouts). Every kernel computes
//
//	t[i*NR+j] = Σ_p ap[p*MR+i] · bp[p*NR+j]
//
// for its tier's MR×NR register tile, with p strictly in order — the
// per-element summation order is what the engine's determinism contract
// hangs off. Panels are zero-padded by pack.go, so kernels always run the
// full tile; kc ≥ 1 is guaranteed by the Go wrappers.

// func microKernelSSE(ap, bp *float32, kc int, t *kernTile)
//
// The 4×8 SSE2 tile (stride 8). The eight accumulator rows live in X0–X7
// (two 4-lane registers per C row); each k step broadcasts one A element
// per row and multiplies it against the two B vectors. Only baseline SSE2
// instructions are used (MOVUPS/SHUFPS/MULPS/ADDPS), which every amd64
// (GOAMD64=v1) guarantees, and multiply and add are separate instructions —
// the same unfused float32 arithmetic, in the same p order, as the portable
// microKernelGo, so the two are bit-identical.
TEXT ·microKernelSSE(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), AX
	MOVQ bp+8(FP), BX
	MOVQ kc+16(FP), CX
	MOVQ t+24(FP), DX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

sseLoop:
	MOVUPS (BX), X8     // B[p][0:4]
	MOVUPS 16(BX), X9   // B[p][4:8]

	MOVSS  (AX), X10    // broadcast A[p][0]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  4(AX), X10   // broadcast A[p][1]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  8(AX), X10   // broadcast A[p][2]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  12(AX), X10  // broadcast A[p][3]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  sseLoop

	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	MOVUPS X4, 64(DX)
	MOVUPS X5, 80(DX)
	MOVUPS X6, 96(DX)
	MOVUPS X7, 112(DX)
	RET

// func microKernelAVX2(ap, bp *float32, kc int, t *kernTile)
//
// The 8×8 AVX2+FMA tile (stride 8): one YMM accumulator per C row (Y0–Y7),
// one B-row load and eight broadcast+FMA pairs per k step. Fused multiply-
// add changes the rounding versus mul+add — this tier is ULP-bounded
// against the reference, not bit-identical to the SSE2/portable pair, but
// bit-deterministic within itself.
TEXT ·microKernelAVX2(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), AX
	MOVQ bp+8(FP), BX
	MOVQ kc+16(FP), CX
	MOVQ t+24(FP), DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

avx2Loop:
	VMOVUPS (BX), Y8      // B[p][0:8]

	VBROADCASTSS (AX), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(AX), Y9
	VFMADD231PS  Y8, Y9, Y1
	VBROADCASTSS 8(AX), Y9
	VFMADD231PS  Y8, Y9, Y2
	VBROADCASTSS 12(AX), Y9
	VFMADD231PS  Y8, Y9, Y3
	VBROADCASTSS 16(AX), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(AX), Y9
	VFMADD231PS  Y8, Y9, Y5
	VBROADCASTSS 24(AX), Y9
	VFMADD231PS  Y8, Y9, Y6
	VBROADCASTSS 28(AX), Y9
	VFMADD231PS  Y8, Y9, Y7

	ADDQ $32, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  avx2Loop

	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)
	VZEROUPPER
	RET

// func microKernelAVX512(ap, bp *float32, kc int, t *kernTile)
//
// The 14×16 AVX-512 tile (stride 16): fourteen ZMM accumulator rows
// (Z0–Z13), one B-row load into Z14, and one embedded-broadcast FMA per row
// per k step — the broadcast rides inside the FMA's memory operand, so the
// load ports retire one vector load plus fourteen 4-byte broadcasts per 448
// FLOPs. 14×16 is the register-pressure sweet spot: 14 accumulators + the
// B vector leave one ZMM spare, while a 16-row tile would evict B.
TEXT ·microKernelAVX512(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), AX
	MOVQ bp+8(FP), BX
	MOVQ kc+16(FP), CX
	MOVQ t+24(FP), DX

	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1
	VXORPS Z2, Z2, Z2
	VXORPS Z3, Z3, Z3
	VXORPS Z4, Z4, Z4
	VXORPS Z5, Z5, Z5
	VXORPS Z6, Z6, Z6
	VXORPS Z7, Z7, Z7
	VXORPS Z8, Z8, Z8
	VXORPS Z9, Z9, Z9
	VXORPS Z10, Z10, Z10
	VXORPS Z11, Z11, Z11
	VXORPS Z12, Z12, Z12
	VXORPS Z13, Z13, Z13

avx512Loop:
	VMOVUPS (BX), Z14     // B[p][0:16]

	VFMADD231PS.BCST (AX), Z14, Z0
	VFMADD231PS.BCST 4(AX), Z14, Z1
	VFMADD231PS.BCST 8(AX), Z14, Z2
	VFMADD231PS.BCST 12(AX), Z14, Z3
	VFMADD231PS.BCST 16(AX), Z14, Z4
	VFMADD231PS.BCST 20(AX), Z14, Z5
	VFMADD231PS.BCST 24(AX), Z14, Z6
	VFMADD231PS.BCST 28(AX), Z14, Z7
	VFMADD231PS.BCST 32(AX), Z14, Z8
	VFMADD231PS.BCST 36(AX), Z14, Z9
	VFMADD231PS.BCST 40(AX), Z14, Z10
	VFMADD231PS.BCST 44(AX), Z14, Z11
	VFMADD231PS.BCST 48(AX), Z14, Z12
	VFMADD231PS.BCST 52(AX), Z14, Z13

	ADDQ $56, AX
	ADDQ $64, BX
	DECQ CX
	JNZ  avx512Loop

	VMOVUPS Z0, (DX)
	VMOVUPS Z1, 64(DX)
	VMOVUPS Z2, 128(DX)
	VMOVUPS Z3, 192(DX)
	VMOVUPS Z4, 256(DX)
	VMOVUPS Z5, 320(DX)
	VMOVUPS Z6, 384(DX)
	VMOVUPS Z7, 448(DX)
	VMOVUPS Z8, 512(DX)
	VMOVUPS Z9, 576(DX)
	VMOVUPS Z10, 640(DX)
	VMOVUPS Z11, 704(DX)
	VMOVUPS Z12, 768(DX)
	VMOVUPS Z13, 832(DX)
	VZEROUPPER
	RET

// func microKernelAVX512BF16(ap, bp *uint16, kc int, t *kernTile)
//
// The 14×16 tile over bf16-storage panels. B's sixteen uint16 lanes are
// widened to fp32 by zero-extend + 16-bit left shift (exact: bf16 is the
// upper half of an fp32), A's element rides through a GPR with the same
// shift and a dword broadcast. Accumulation is fp32 FMA in the same order
// as the fp32 kernel.
TEXT ·microKernelAVX512BF16(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), AX
	MOVQ bp+8(FP), BX
	MOVQ kc+16(FP), CX
	MOVQ t+24(FP), DX

	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1
	VXORPS Z2, Z2, Z2
	VXORPS Z3, Z3, Z3
	VXORPS Z4, Z4, Z4
	VXORPS Z5, Z5, Z5
	VXORPS Z6, Z6, Z6
	VXORPS Z7, Z7, Z7
	VXORPS Z8, Z8, Z8
	VXORPS Z9, Z9, Z9
	VXORPS Z10, Z10, Z10
	VXORPS Z11, Z11, Z11
	VXORPS Z12, Z12, Z12
	VXORPS Z13, Z13, Z13

bf16Loop:
	VPMOVZXWD (BX), Z14   // B[p][0:16] as dwords
	VPSLLD    $16, Z14, Z14 // to the fp32 bit positions (exact)

#define BF16ROW(off, acc) \
	MOVWLZX      off(AX), R8 \
	SHLL         $16, R8     \
	VPBROADCASTD R8, Z15     \
	VFMADD231PS  Z14, Z15, acc

	BF16ROW(0, Z0)
	BF16ROW(2, Z1)
	BF16ROW(4, Z2)
	BF16ROW(6, Z3)
	BF16ROW(8, Z4)
	BF16ROW(10, Z5)
	BF16ROW(12, Z6)
	BF16ROW(14, Z7)
	BF16ROW(16, Z8)
	BF16ROW(18, Z9)
	BF16ROW(20, Z10)
	BF16ROW(22, Z11)
	BF16ROW(24, Z12)
	BF16ROW(26, Z13)

#undef BF16ROW

	ADDQ $28, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  bf16Loop

	VMOVUPS Z0, (DX)
	VMOVUPS Z1, 64(DX)
	VMOVUPS Z2, 128(DX)
	VMOVUPS Z3, 192(DX)
	VMOVUPS Z4, 256(DX)
	VMOVUPS Z5, 320(DX)
	VMOVUPS Z6, 384(DX)
	VMOVUPS Z7, 448(DX)
	VMOVUPS Z8, 512(DX)
	VMOVUPS Z9, 576(DX)
	VMOVUPS Z10, 640(DX)
	VMOVUPS Z11, 704(DX)
	VMOVUPS Z12, 768(DX)
	VMOVUPS Z13, 832(DX)
	VZEROUPPER
	RET

// func microKernelAVX512FP16(ap, bp *uint16, kc int, t *kernTile)
//
// The 14×16 tile over IEEE-half storage panels, decoded through VCVTPH2PS
// (half→single is exact, subnormals included) with fp32 FMA accumulation.
TEXT ·microKernelAVX512FP16(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), AX
	MOVQ bp+8(FP), BX
	MOVQ kc+16(FP), CX
	MOVQ t+24(FP), DX

	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1
	VXORPS Z2, Z2, Z2
	VXORPS Z3, Z3, Z3
	VXORPS Z4, Z4, Z4
	VXORPS Z5, Z5, Z5
	VXORPS Z6, Z6, Z6
	VXORPS Z7, Z7, Z7
	VXORPS Z8, Z8, Z8
	VXORPS Z9, Z9, Z9
	VXORPS Z10, Z10, Z10
	VXORPS Z11, Z11, Z11
	VXORPS Z12, Z12, Z12
	VXORPS Z13, Z13, Z13

fp16Loop:
	VCVTPH2PS (BX), Z14   // B[p][0:16] halves → fp32

#define FP16ROW(off, acc) \
	MOVWLZX      off(AX), R8 \
	MOVQ         R8, X15     \
	VCVTPH2PS    X15, X15    \
	VBROADCASTSS X15, Z15    \
	VFMADD231PS  Z14, Z15, acc

	FP16ROW(0, Z0)
	FP16ROW(2, Z1)
	FP16ROW(4, Z2)
	FP16ROW(6, Z3)
	FP16ROW(8, Z4)
	FP16ROW(10, Z5)
	FP16ROW(12, Z6)
	FP16ROW(14, Z7)
	FP16ROW(16, Z8)
	FP16ROW(18, Z9)
	FP16ROW(20, Z10)
	FP16ROW(22, Z11)
	FP16ROW(24, Z12)
	FP16ROW(26, Z13)

#undef FP16ROW

	ADDQ $28, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  fp16Loop

	VMOVUPS Z0, (DX)
	VMOVUPS Z1, 64(DX)
	VMOVUPS Z2, 128(DX)
	VMOVUPS Z3, 192(DX)
	VMOVUPS Z4, 256(DX)
	VMOVUPS Z5, 320(DX)
	VMOVUPS Z6, 384(DX)
	VMOVUPS Z7, 448(DX)
	VMOVUPS Z8, 512(DX)
	VMOVUPS Z9, 576(DX)
	VMOVUPS Z10, 640(DX)
	VMOVUPS Z11, 704(DX)
	VMOVUPS Z12, 768(DX)
	VMOVUPS Z13, 832(DX)
	VZEROUPPER
	RET

// func dotAVX2(a, b *float32, n int) float32
//
// Four independent YMM accumulator chains (32 elements per step), FMA
// inside a lane, fixed reduction tree (0+1, 2+3, +, 8→4→1), scalar FMA
// tail. The lane split is fixed, so the result is a deterministic function
// of the input — different from the scalar dotUnroll order, which is fine:
// dot consumers are tier-deterministic, not cross-tier-identical.
TEXT ·dotAVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), AX
	MOVQ b+8(FP), BX
	MOVQ n+16(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	CMPQ CX, $32
	JL   dotAVX2Blk8

dotAVX2Loop32:
	VMOVUPS     (AX), Y4
	VFMADD231PS (BX), Y4, Y0
	VMOVUPS     32(AX), Y5
	VFMADD231PS 32(BX), Y5, Y1
	VMOVUPS     64(AX), Y6
	VFMADD231PS 64(BX), Y6, Y2
	VMOVUPS     96(AX), Y7
	VFMADD231PS 96(BX), Y7, Y3
	ADDQ        $128, AX
	ADDQ        $128, BX
	SUBQ        $32, CX
	CMPQ        CX, $32
	JGE         dotAVX2Loop32

dotAVX2Blk8:
	CMPQ CX, $8
	JL   dotAVX2Reduce
	VMOVUPS     (AX), Y4
	VFMADD231PS (BX), Y4, Y0
	ADDQ        $32, AX
	ADDQ        $32, BX
	SUBQ        $8, CX
	JMP         dotAVX2Blk8

dotAVX2Reduce:
	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0

	TESTQ CX, CX
	JZ    dotAVX2Done

dotAVX2Tail:
	VMOVSS      (AX), X2
	VFMADD231SS (BX), X2, X0
	ADDQ        $4, AX
	ADDQ        $4, BX
	DECQ        CX
	JNZ         dotAVX2Tail

dotAVX2Done:
	VMOVSS X0, ret+24(FP)
	VZEROUPPER
	RET

// func dotAVX512(a, b *float32, n int) float32
//
// As dotAVX2 with four ZMM chains (64 elements per step) and a 16→8→4→1
// reduction.
TEXT ·dotAVX512(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), AX
	MOVQ b+8(FP), BX
	MOVQ n+16(FP), CX

	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1
	VXORPS Z2, Z2, Z2
	VXORPS Z3, Z3, Z3

	CMPQ CX, $64
	JL   dotAVX512Blk16

dotAVX512Loop64:
	VMOVUPS     (AX), Z4
	VFMADD231PS (BX), Z4, Z0
	VMOVUPS     64(AX), Z5
	VFMADD231PS 64(BX), Z5, Z1
	VMOVUPS     128(AX), Z6
	VFMADD231PS 128(BX), Z6, Z2
	VMOVUPS     192(AX), Z7
	VFMADD231PS 192(BX), Z7, Z3
	ADDQ        $256, AX
	ADDQ        $256, BX
	SUBQ        $64, CX
	CMPQ        CX, $64
	JGE         dotAVX512Loop64

dotAVX512Blk16:
	CMPQ CX, $16
	JL   dotAVX512Reduce
	VMOVUPS     (AX), Z4
	VFMADD231PS (BX), Z4, Z0
	ADDQ        $64, AX
	ADDQ        $64, BX
	SUBQ        $16, CX
	JMP         dotAVX512Blk16

dotAVX512Reduce:
	VADDPS        Z1, Z0, Z0
	VADDPS        Z3, Z2, Z2
	VADDPS        Z2, Z0, Z0
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPS        Y1, Y0, Y0
	VEXTRACTF128  $1, Y0, X1
	VADDPS        X1, X0, X0
	VHADDPS       X0, X0, X0
	VHADDPS       X0, X0, X0

	TESTQ CX, CX
	JZ    dotAVX512Done

dotAVX512Tail:
	VMOVSS      (AX), X2
	VFMADD231SS (BX), X2, X0
	ADDQ        $4, AX
	ADDQ        $4, BX
	DECQ        CX
	JNZ         dotAVX512Tail

dotAVX512Done:
	VMOVSS X0, ret+24(FP)
	VZEROUPPER
	RET

// func minMaxAVX2(x *float32, n int, out *[8]float32)
//
// One-pass vector min/max for n ≥ 8: 8-lane accumulators, the ragged tail
// re-reads the last full 8-lane block (overlap is harmless — min/max are
// idempotent). The 8 partial minima land in out[0:4]+out[4:8]-reduced form:
// out[0:4] = 4-lane minima, out[4:8] = 4-lane maxima; the Go wrapper
// finishes the scalar reduction. Exact: min/max are order-independent.
TEXT ·minMaxAVX2(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), AX
	MOVQ n+8(FP), CX
	MOVQ out+16(FP), DX

	VMOVUPS (AX), Y0      // running min
	VMOVAPS Y0, Y1        // running max
	LEAQ    -32(AX)(CX*4), BX // address of the last full 8-lane block
	ADDQ    $32, AX
	SUBQ    $8, CX

minMaxAVX2Loop:
	CMPQ CX, $8
	JL   minMaxAVX2Tail
	VMOVUPS (AX), Y2
	VMINPS  Y2, Y0, Y0
	VMAXPS  Y2, Y1, Y1
	ADDQ    $32, AX
	SUBQ    $8, CX
	JMP     minMaxAVX2Loop

minMaxAVX2Tail:
	TESTQ CX, CX
	JZ    minMaxAVX2Reduce
	VMOVUPS (BX), Y2      // overlapped last block
	VMINPS  Y2, Y0, Y0
	VMAXPS  Y2, Y1, Y1

minMaxAVX2Reduce:
	VEXTRACTF128 $1, Y0, X2
	VMINPS       X2, X0, X0
	VEXTRACTF128 $1, Y1, X2
	VMAXPS       X2, X1, X1
	VMOVUPS      X0, (DX)
	VMOVUPS      X1, 16(DX)
	VZEROUPPER
	RET

// func minMaxAVX512(x *float32, n int, out *[8]float32)
//
// As minMaxAVX2 with 16-lane accumulators, for n ≥ 16.
TEXT ·minMaxAVX512(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), AX
	MOVQ n+8(FP), CX
	MOVQ out+16(FP), DX

	VMOVUPS (AX), Z0
	VMOVAPS Z0, Z1
	LEAQ    -64(AX)(CX*4), BX
	ADDQ    $64, AX
	SUBQ    $16, CX

minMaxAVX512Loop:
	CMPQ CX, $16
	JL   minMaxAVX512Tail
	VMOVUPS (AX), Z2
	VMINPS  Z2, Z0, Z0
	VMAXPS  Z2, Z1, Z1
	ADDQ    $64, AX
	SUBQ    $16, CX
	JMP     minMaxAVX512Loop

minMaxAVX512Tail:
	TESTQ CX, CX
	JZ    minMaxAVX512Reduce
	VMOVUPS (BX), Z2
	VMINPS  Z2, Z0, Z0
	VMAXPS  Z2, Z1, Z1

minMaxAVX512Reduce:
	VEXTRACTF64X4 $1, Z0, Y2
	VMINPS        Y2, Y0, Y0
	VEXTRACTF64X4 $1, Z1, Y2
	VMAXPS        Y2, Y1, Y1
	VEXTRACTF128  $1, Y0, X2
	VMINPS        X2, X0, X0
	VEXTRACTF128  $1, Y1, X2
	VMAXPS        X2, X1, X1
	VMOVUPS       X0, (DX)
	VMOVUPS       X1, 16(DX)
	VZEROUPPER
	RET

// func quantize8AVX2(v, out *float32, n int, lo, scale, inv float32)
//
// The Uniform8 quantize-reconstruct map, 8 lanes at a time with the exact
// unfused operation sequence of the scalar loop — subtract, multiply, add
// 0.5, truncate to int32, clamp to [0,255], convert back, multiply, add —
// so the vector path is bit-identical to the Go one. The ragged tail is
// handled by the Go wrapper.
TEXT ·quantize8AVX2(SB), NOSPLIT, $0-36
	MOVQ v+0(FP), AX
	MOVQ out+8(FP), BX
	MOVQ n+16(FP), CX

	VBROADCASTSS lo+24(FP), Y7
	VBROADCASTSS scale+28(FP), Y6
	VBROADCASTSS inv+32(FP), Y5
	MOVL         $0x3F000000, R8 // 0.5f
	MOVQ         R8, X4
	VBROADCASTSS X4, Y4
	MOVL         $255, R8
	MOVQ         R8, X3
	VPBROADCASTD X3, Y3
	VPXOR        Y2, Y2, Y2

quantize8AVX2Loop:
	CMPQ CX, $8
	JL   quantize8AVX2Done
	VMOVUPS     (AX), Y0
	VSUBPS      Y7, Y0, Y0    // x - lo
	VMULPS      Y5, Y0, Y0    // · inv
	VADDPS      Y4, Y0, Y0    // + 0.5
	VCVTTPS2DQ  Y0, Y0        // truncate toward zero, as Go's int32()
	VPMAXSD     Y2, Y0, Y0    // clamp low
	VPMINSD     Y3, Y0, Y0    // clamp high
	VCVTDQ2PS   Y0, Y0
	VMULPS      Y6, Y0, Y0    // · scale
	VADDPS      Y7, Y0, Y0    // + lo
	VMOVUPS     Y0, (BX)
	ADDQ        $32, AX
	ADDQ        $32, BX
	SUBQ        $8, CX
	JMP         quantize8AVX2Loop

quantize8AVX2Done:
	VZEROUPPER
	RET

// func quantize8AVX512(v, out *float32, n int, lo, scale, inv float32)
//
// As quantize8AVX2 with 16 lanes.
TEXT ·quantize8AVX512(SB), NOSPLIT, $0-36
	MOVQ v+0(FP), AX
	MOVQ out+8(FP), BX
	MOVQ n+16(FP), CX

	VBROADCASTSS lo+24(FP), Z7
	VBROADCASTSS scale+28(FP), Z6
	VBROADCASTSS inv+32(FP), Z5
	MOVL         $0x3F000000, R8
	MOVQ         R8, X4
	VBROADCASTSS X4, Z4
	MOVL         $255, R8
	VPBROADCASTD R8, Z3
	VPXORQ       Z2, Z2, Z2

quantize8AVX512Loop:
	CMPQ CX, $16
	JL   quantize8AVX512Done
	VMOVUPS     (AX), Z0
	VSUBPS      Z7, Z0, Z0
	VMULPS      Z5, Z0, Z0
	VADDPS      Z4, Z0, Z0
	VCVTTPS2DQ  Z0, Z0
	VPMAXSD     Z2, Z0, Z0
	VPMINSD     Z3, Z0, Z0
	VCVTDQ2PS   Z0, Z0
	VMULPS      Z6, Z0, Z0
	VADDPS      Z7, Z0, Z0
	VMOVUPS     Z0, (BX)
	ADDQ        $64, AX
	ADDQ        $64, BX
	SUBQ        $16, CX
	JMP         quantize8AVX512Loop

quantize8AVX512Done:
	VZEROUPPER
	RET
