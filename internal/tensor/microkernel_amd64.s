//go:build amd64

#include "textflag.h"

// func microKernelSSE(ap, bp *float32, kc int, t *[32]float32)
//
// One MR×NR = 4×8 register tile of the packed GEMM:
//
//	t[i*8+j] = Σ_p ap[p*4+i] · bp[p*8+j]
//
// ap is a packed A panel (MR floats per k step), bp a packed B panel (NR
// floats per k step); both are produced by pack.go with zero padding, so the
// kernel always runs the full tile. The eight accumulator rows live in
// X0–X7 (two 4-lane registers per C row); each k step broadcasts one A
// element per row and multiplies it against the two B vectors. Only
// baseline SSE2 instructions are used (MOVUPS/SHUFPS/MULPS/ADDPS), which
// every amd64 (GOAMD64=v1) guarantees, and multiply and add are separate
// instructions — the same unfused float32 arithmetic, in the same p order,
// as the portable microKernelGo, so the two are bit-identical.
TEXT ·microKernelSSE(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), AX
	MOVQ bp+8(FP), BX
	MOVQ kc+16(FP), CX
	MOVQ t+24(FP), DX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ CX, CX
	JZ    store

loop:
	MOVUPS (BX), X8     // B[p][0:4]
	MOVUPS 16(BX), X9   // B[p][4:8]

	MOVSS  (AX), X10    // broadcast A[p][0]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  4(AX), X10   // broadcast A[p][1]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  8(AX), X10   // broadcast A[p][2]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  12(AX), X10  // broadcast A[p][3]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  loop

store:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	MOVUPS X4, 64(DX)
	MOVUPS X5, 80(DX)
	MOVUPS X6, 96(DX)
	MOVUPS X7, 112(DX)
	RET
