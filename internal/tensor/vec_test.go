package tensor

import (
	"math"
	"testing"
)

// TestMinMaxBitIdenticalAcrossTiers pins the cross-tier contract of the
// vectorized reduction: min/max is order-independent, so every tier —
// including the assembly forms with their overlapped ragged-tail reads —
// must produce exactly the scalar answer, at every length around the vector
// widths.
func TestMinMaxBitIdenticalAcrossTiers(t *testing.T) {
	g := NewRNG(52)
	lengths := []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000, 1023}
	for _, n := range lengths {
		x := make([]float32, n)
		g.FillNormal(x, 0, 1)
		// Plant extremes off-lane to catch reduction mistakes.
		x[g.Intn(n)] = -37.5
		x[g.Intn(n)] = 41.25
		wantLo, wantHi := minMaxGo(x)
		forEachTier(t, func(t *testing.T) {
			lo, hi := MinMax(x)
			if lo != wantLo || hi != wantHi {
				t.Errorf("n=%d: got (%v, %v) want (%v, %v)", n, lo, hi, wantLo, wantHi)
			}
		})
	}
}

// TestQuantizeUniform8BitIdenticalAcrossTiers pins the element-wise map:
// same unfused op sequence on every tier, so outputs are bit-identical to
// the scalar reference, including clamp edges and the in-place (aliased)
// form.
func TestQuantizeUniform8BitIdenticalAcrossTiers(t *testing.T) {
	g := NewRNG(53)
	for _, n := range []int{1, 7, 8, 9, 16, 17, 33, 100, 1000} {
		v := make([]float32, n)
		g.FillNormal(v, 0, 2)
		lo, hi := minMaxGo(v)
		scale := (hi - lo) / 255
		if scale == 0 {
			continue
		}
		inv := 1 / scale
		want := make([]float32, n)
		quantize8Go(v, want, lo, scale, inv)
		forEachTier(t, func(t *testing.T) {
			out := make([]float32, n)
			QuantizeUniform8(v, out, lo, scale, inv)
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("n=%d elem %d: got %v want %v (in %v)", n, i, out[i], want[i], v[i])
				}
			}
			// Aliased form: out == v.
			vc := append([]float32(nil), v...)
			QuantizeUniform8(vc, vc, lo, scale, inv)
			for i := range vc {
				if vc[i] != want[i] {
					t.Fatalf("n=%d aliased elem %d: got %v want %v", n, i, vc[i], want[i])
				}
			}
		})
	}
}

// TestDot32PerTier checks the dispatched dot product against a float64
// reference on every tier (tier-deterministic, not cross-tier identical)
// and pins within-tier determinism across repeated calls.
func TestDot32PerTier(t *testing.T) {
	g := NewRNG(54)
	for _, n := range []int{0, 1, 3, 8, 16, 31, 32, 33, 64, 100, 1000} {
		a := make([]float32, n)
		b := make([]float32, n)
		g.FillNormal(a, 0, 1)
		g.FillNormal(b, 0, 1)
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		forEachTier(t, func(t *testing.T) {
			got := Dot32(a, b)
			if math.Abs(float64(got)-want) > 1e-4*math.Sqrt(float64(n)+1) {
				t.Errorf("n=%d: got %v want %v", n, got, want)
			}
			if again := Dot32(a, b); again != got {
				t.Errorf("n=%d: dot not deterministic within tier: %v vs %v", n, got, again)
			}
		})
	}
}
