//go:build amd64

package tensor

// Wrappers for the amd64 vector-helper assembly (microkernel_amd64.s): the
// one-pass min/max reduction and the Uniform8 quantize map. Both asm forms
// process full vector blocks only; short inputs and ragged tails fall back
// to the scalar Go forms, which are bit-identical (min/max are order-free,
// the quantize map is element-wise with the same unfused op sequence).

// minMaxAVX2 reduces n ≥ 8 elements to 4-lane partial minima (out[0:4]) and
// maxima (out[4:8]).
//
//go:noescape
func minMaxAVX2(x *float32, n int, out *[8]float32)

// minMaxAVX512 is minMaxAVX2 for n ≥ 16 with 16-lane accumulators.
//
//go:noescape
func minMaxAVX512(x *float32, n int, out *[8]float32)

//go:noescape
func quantize8AVX2(v, out *float32, n int, lo, scale, inv float32)

//go:noescape
func quantize8AVX512(v, out *float32, n int, lo, scale, inv float32)

func minMaxAVX2Wrap(x []float32) (lo, hi float32) {
	if len(x) < 8 {
		return minMaxGo(x)
	}
	var out [8]float32
	minMaxAVX2(&x[0], len(x), &out)
	return reduceMinMax4(&out)
}

func minMaxAVX512Wrap(x []float32) (lo, hi float32) {
	if len(x) < 16 {
		return minMaxGo(x)
	}
	var out [8]float32
	minMaxAVX512(&x[0], len(x), &out)
	return reduceMinMax4(&out)
}

func reduceMinMax4(out *[8]float32) (lo, hi float32) {
	lo, hi = out[0], out[4]
	for i := 1; i < 4; i++ {
		if out[i] < lo {
			lo = out[i]
		}
		if out[4+i] > hi {
			hi = out[4+i]
		}
	}
	return lo, hi
}

func quantize8AVX2Wrap(v, out []float32, lo, scale, inv float32) {
	n := len(v) &^ 7
	if n > 0 {
		quantize8AVX2(&v[0], &out[0], n, lo, scale, inv)
	}
	quantize8Go(v[n:], out[n:], lo, scale, inv)
}

func quantize8AVX512Wrap(v, out []float32, lo, scale, inv float32) {
	n := len(v) &^ 15
	if n > 0 {
		quantize8AVX512(&v[0], &out[0], n, lo, scale, inv)
	}
	quantize8Go(v[n:], out[n:], lo, scale, inv)
}
