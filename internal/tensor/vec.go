package tensor

// Vectorized straggler kernels behind the same feature gate as the GEMM
// tiers: the dot product driving MatVec and the reduction/map loops of
// internal/quant's Uniform8 codec. Each has a portable Go form; the AVX2
// and AVX-512 tiers substitute assembly (microkernel_amd64.s) that is
// bit-identical where the operation is order-independent (min/max, the
// element-wise quantize map) and tier-deterministic where it is not (dot).

// Dot returns the dot product of equal-length vectors through the active
// tier's kernel: a fixed lane-split accumulation, deterministic per tier
// (the FMA tiers fuse multiply-add and split lanes wider than the portable
// unroll, so values may differ across tiers within normal rounding).
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot32 length mismatch")
	}
	return active.dot(a, b)
}

// MinMax returns the minimum and maximum of x in one pass. Results are
// bit-identical across tiers — min/max are order-independent — and x must
// be non-empty.
func MinMax(x []float32) (lo, hi float32) {
	if len(x) == 0 {
		panic("tensor: MinMax of empty vector")
	}
	return active.minMax(x)
}

// QuantizeUniform8 maps v onto the 256 uniform levels lo + k·scale,
// k = clamp(round((v[i]-lo)·inv), 0, 255), writing reconstructions into
// out (which may alias v). inv is the caller's precomputed 1/scale — the
// quant codec derives it once per vector. The operation sequence is fixed
// and element-wise, so every tier produces bit-identical output.
func QuantizeUniform8(v, out []float32, lo, scale, inv float32) {
	if len(out) != len(v) {
		panic("tensor: QuantizeUniform8 length mismatch")
	}
	active.quant8(v, out, lo, scale, inv)
}

// minMaxGo is the scalar min/max reduction.
func minMaxGo(x []float32) (lo, hi float32) {
	lo, hi = x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// quantize8Go is the scalar quantize-reconstruct map and the bitwise
// reference for the assembly forms: subtract, scale, +0.5, truncate, clamp,
// rescale — all unfused.
func quantize8Go(v, out []float32, lo, scale, inv float32) {
	for i, x := range v {
		level := int32((x-lo)*inv + 0.5)
		if level < 0 {
			level = 0
		} else if level > 255 {
			level = 255
		}
		out[i] = lo + float32(level)*scale
	}
}
