//go:build !amd64

package tensor

// microKernel falls back to the portable register-tiled kernel on
// architectures without an assembly implementation.
func microKernel(ap, bp []float32, kc int, t *[MR * NR]float32) {
	if kc == 0 {
		*t = [MR * NR]float32{}
		return
	}
	microKernelGo(ap, bp, kc, t)
}
