//go:build !amd64 && !arm64

package tensor

// detectKernels on architectures without assembly micro-kernels: only the
// portable generic tier exists, so dispatch collapses to it.
func detectKernels() []*kernel {
	return []*kernel{genericKernel()}
}
