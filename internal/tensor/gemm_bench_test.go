package tensor

import (
	"fmt"
	"testing"
)

// Benchmark shapes mirror the GEMMs the conv and dense layers actually
// issue: C = W·cols on the forward path, dcols = Wᵀ·dy and dW += dy·colsᵀ
// on the backward path, plus the dense-layer C = X·Wᵀ. Dimensions are the
// (m, n, k) of the logical product C(m×n) = A(m×k)·B(k×n).
var gemmBenchShapes = []struct{ m, n, k int }{
	{20, 500, 576},
	{50, 500, 800},
	{64, 500, 800},
}

func benchShapeName(m, n, k int) string { return fmt.Sprintf("%dx%dx%d", m, n, k) }

func BenchmarkGEMM(b *testing.B) {
	for _, s := range gemmBenchShapes {
		g := NewRNG(21)
		a := randMat(g, s.m, s.k)
		bb := randMat(g, s.k, s.n)
		c := New(s.m, s.n)
		b.Run(benchShapeName(s.m, s.n, s.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMul(c, a, bb)
			}
			reportGFLOPS(b, s.m, s.n, s.k)
		})
	}
}

// BenchmarkGEMMTransA is the conv input-gradient shape: dcols(k×n) = Wᵀ·dy
// with W stored m-major — the engine absorbs the transposition at pack time.
func BenchmarkGEMMTransA(b *testing.B) {
	for _, s := range gemmBenchShapes {
		g := NewRNG(22)
		a := randMat(g, s.k, s.m) // stored k×m, logical Aᵀ is m×k
		bb := randMat(g, s.k, s.n)
		c := New(s.m, s.n)
		b.Run(benchShapeName(s.m, s.n, s.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulTransA(c, a, bb)
			}
			reportGFLOPS(b, s.m, s.n, s.k)
		})
	}
}

// BenchmarkGEMMTransB is the dense-forward shape: C = X·Wᵀ with W stored F×D.
func BenchmarkGEMMTransB(b *testing.B) {
	for _, s := range gemmBenchShapes {
		g := NewRNG(23)
		a := randMat(g, s.m, s.k)
		bb := randMat(g, s.n, s.k) // stored n×k, logical Bᵀ is k×n
		c := New(s.m, s.n)
		b.Run(benchShapeName(s.m, s.n, s.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulTransB(c, a, bb)
			}
			reportGFLOPS(b, s.m, s.n, s.k)
		})
	}
}

// BenchmarkGEMMAddTransB is the conv weight-gradient shape: dW += dy·colsᵀ.
func BenchmarkGEMMAddTransB(b *testing.B) {
	for _, s := range gemmBenchShapes {
		g := NewRNG(24)
		a := randMat(g, s.m, s.k)
		bb := randMat(g, s.n, s.k)
		c := New(s.m, s.n)
		b.Run(benchShapeName(s.m, s.n, s.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulAdd2TransB(c, a, bb)
			}
			reportGFLOPS(b, s.m, s.n, s.k)
		})
	}
}

func reportGFLOPS(b *testing.B, m, n, k int) {
	flops := 2 * float64(m) * float64(n) * float64(k) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkIm2col(b *testing.B) {
	// LeNet conv2 geometry: 20 input channels, 12×12 spatial, 5×5 kernel.
	c, h, w, kh, kw, stride, pad := 20, 12, 12, 5, 5, 1, 0
	oh := OutDim(h, kh, stride, pad)
	ow := OutDim(w, kw, stride, pad)
	src := make([]float32, c*h*w)
	NewRNG(25).FillNormal(src, 0, 1)
	dst := make([]float32, c*kh*kw*oh*ow)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Im2col(dst, src, c, h, w, kh, kw, stride, pad)
	}
}

func BenchmarkCol2im(b *testing.B) {
	c, h, w, kh, kw, stride, pad := 20, 12, 12, 5, 5, 1, 0
	oh := OutDim(h, kh, stride, pad)
	ow := OutDim(w, kw, stride, pad)
	src := make([]float32, c*kh*kw*oh*ow)
	NewRNG(26).FillNormal(src, 0, 1)
	dst := make([]float32, c*h*w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Col2im(dst, src, c, h, w, kh, kw, stride, pad)
	}
}

// benchSink defeats dead-code elimination: without it the compiler can
// inline a kernel into the loop, prove the output is never read, and delete
// the arithmetic being measured.
var benchSink float32

func BenchmarkTranspose(b *testing.B) {
	g := NewRNG(27)
	a := randMat(g, 500, 800)
	dst := New(800, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transpose(dst, a)
		benchSink += dst.Data[0]
	}
}

func BenchmarkMatVec(b *testing.B) {
	g := NewRNG(28)
	a := randMat(g, 500, 800)
	x := make([]float32, 800)
	y := make([]float32, 500)
	g.FillNormal(x, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatVec(y, a, x)
		benchSink += y[0]
	}
}
