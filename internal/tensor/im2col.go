package tensor

// Im2col unrolls an input image into a matrix of receptive-field columns so
// that convolution becomes a single GEMM, exactly as cuDNN's GEMM-based
// algorithm does. The input is a single image in CHW layout (channels c,
// height h, width w); the output is a (c*kh*kw) × (oh*ow) row-major matrix
// where oh/ow are the output spatial dims for the given kernel, stride and
// zero padding.
func Im2col(dst []float32, src []float32, c, h, w, kh, kw, stride, pad int) {
	oh := OutDim(h, kh, stride, pad)
	ow := OutDim(w, kw, stride, pad)
	if len(dst) != c*kh*kw*oh*ow {
		panic("tensor: Im2col dst size mismatch")
	}
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[idx] = 0
							idx++
						}
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							dst[idx] = 0
						} else {
							dst[idx] = src[rowBase+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2im is the adjoint of Im2col: it scatters (accumulates) the column
// matrix back into an image, which is the gradient path of the GEMM-based
// convolution. dst must be pre-zeroed by the caller when accumulation across
// several images is not wanted.
func Col2im(dst []float32, src []float32, c, h, w, kh, kw, stride, pad int) {
	oh := OutDim(h, kh, stride, pad)
	ow := OutDim(w, kw, stride, pad)
	if len(src) != c*kh*kw*oh*ow {
		panic("tensor: Col2im src size mismatch")
	}
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						idx += ow
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix >= 0 && ix < w {
							dst[rowBase+ix] += src[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// OutDim returns the output spatial size of a convolution or pooling window:
// floor((in + 2*pad - kernel)/stride) + 1.
func OutDim(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
