package tensor

// Im2col unrolls an input image into a matrix of receptive-field columns so
// that convolution becomes a single GEMM, exactly as cuDNN's GEMM-based
// algorithm does. The input is a single image in CHW layout (channels c,
// height h, width w); the output is a (c*kh*kw) × (oh*ow) row-major matrix
// where oh/ow are the output spatial dims for the given kernel, stride and
// zero padding.
//
// These are the hottest loops after GEMM itself, so the per-element bounds
// branch is hoisted out of the inner ox sweep: for a fixed kernel tap kx the
// in-bounds output range [oxLo, oxHi) is known up front (colRange), the
// padding prefix/suffix are plain zero fills, and the stride-1 interior —
// every conv in the model zoo — collapses to a single copy.
//
// When a channel plane outgrows the L1 source budget (blocking.go), the tap
// sweep is blocked over output rows: each block's source rows are re-read
// from L1 across all kh·kw taps instead of re-streamed from L2 per tap.
// Small images (a single block) keep the original loop order exactly.
func Im2col(dst []float32, src []float32, c, h, w, kh, kw, stride, pad int) {
	oh := OutDim(h, kh, stride, pad)
	ow := OutDim(w, kw, stride, pad)
	if len(dst) != c*kh*kw*oh*ow {
		panic("tensor: Im2col dst size mismatch")
	}
	ob := oh
	if h*w > im2colSrcBudget {
		ob = im2colRowBlock(w, kh, stride)
	}
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		chIdx := ch * kh * kw * oh * ow
		for oy0 := 0; oy0 < oh; oy0 += ob {
			oy1 := oy0 + ob
			if oy1 > oh {
				oy1 = oh
			}
			idx := chIdx + oy0*ow // this block's rows in the first tap
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					oxLo, oxHi := colRange(ow, w, kx, stride, pad)
					rowIdx := idx
					idx += oh * ow // same block, next tap
					for oy := oy0; oy < oy1; oy++ {
						row := dst[rowIdx : rowIdx+ow]
						rowIdx += ow
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h || oxLo == oxHi {
							for ox := range row {
								row[ox] = 0
							}
							continue
						}
						rowBase := base + iy*w + kx - pad
						for ox := 0; ox < oxLo; ox++ {
							row[ox] = 0
						}
						if stride == 1 {
							copy(row[oxLo:oxHi], src[rowBase+oxLo:rowBase+oxHi])
						} else {
							ix := rowBase + oxLo*stride
							for ox := oxLo; ox < oxHi; ox++ {
								row[ox] = src[ix]
								ix += stride
							}
						}
						for ox := oxHi; ox < ow; ox++ {
							row[ox] = 0
						}
					}
				}
			}
		}
	}
}

// Col2im is the adjoint of Im2col: it scatters (accumulates) the column
// matrix back into an image, which is the gradient path of the GEMM-based
// convolution. dst must be pre-zeroed by the caller when accumulation across
// several images is not wanted. It uses the same hoisted [oxLo, oxHi) valid
// range as Im2col; padding taps contribute nothing and are skipped outright.
// The scatter destination is what gets re-read here (+=), so the same
// output-row blocking keeps each block's destination rows L1-resident
// across the kh·kw taps on large images.
func Col2im(dst []float32, src []float32, c, h, w, kh, kw, stride, pad int) {
	oh := OutDim(h, kh, stride, pad)
	ow := OutDim(w, kw, stride, pad)
	if len(src) != c*kh*kw*oh*ow {
		panic("tensor: Col2im src size mismatch")
	}
	ob := oh
	if h*w > im2colSrcBudget {
		ob = im2colRowBlock(w, kh, stride)
	}
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		chIdx := ch * kh * kw * oh * ow
		for oy0 := 0; oy0 < oh; oy0 += ob {
			oy1 := oy0 + ob
			if oy1 > oh {
				oy1 = oh
			}
			idx := chIdx + oy0*ow
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					oxLo, oxHi := colRange(ow, w, kx, stride, pad)
					rowIdx := idx
					idx += oh * ow
					if oxLo == oxHi {
						continue
					}
					for oy := oy0; oy < oy1; oy++ {
						row := src[rowIdx : rowIdx+ow]
						rowIdx += ow
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						rowBase := base + iy*w + kx - pad
						if stride == 1 {
							out := dst[rowBase+oxLo : rowBase+oxHi]
							in := row[oxLo:oxHi]
							for j, v := range in {
								out[j] += v
							}
						} else {
							ix := rowBase + oxLo*stride
							for ox := oxLo; ox < oxHi; ox++ {
								dst[ix] += row[ox]
								ix += stride
							}
						}
					}
				}
			}
		}
	}
}

// colRange returns the half-open output range [oxLo, oxHi) ⊆ [0, ow) for
// which the input column ix = ox*stride + kx - pad lies inside [0, w); the
// complement is zero padding. Hoisting this out of the ox loop removes the
// per-element branch of the naive form.
func colRange(ow, w, kx, stride, pad int) (oxLo, oxHi int) {
	oxLo = ceilDiv(pad-kx, stride)
	if oxLo < 0 {
		oxLo = 0
	}
	oxHi = floorDiv(w-1-kx+pad, stride) + 1
	if oxHi > ow {
		oxHi = ow
	}
	if oxHi < oxLo {
		oxHi = oxLo
	}
	if oxLo > ow {
		oxLo, oxHi = ow, ow
	}
	return oxLo, oxHi
}

// floorDiv returns ⌊a/b⌋ for b > 0 (Go's / truncates toward zero).
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b int) int {
	return floorDiv(a+b-1, b)
}

// OutDim returns the output spatial size of a convolution or pooling window:
// floor((in + 2*pad - kernel)/stride) + 1.
func OutDim(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
