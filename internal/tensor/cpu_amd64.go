//go:build amd64

package tensor

// Runtime CPU-feature detection for the amd64 kernel tiers, via raw CPUID —
// the stdlib's internal/cpu is unimportable and the module is dependency-
// free by policy, so the handful of leaves the dispatch needs are read
// directly (cpu_amd64.s). OS support for the wide register states is
// checked through XGETBV exactly as internal/cpu does: a kernel that does
// not context-switch ZMM state must not be handed AVX-512 code.

// cpuidRaw executes CPUID with the given leaf/subleaf (cpu_amd64.s).
func cpuidRaw(op, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the XSAVE feature-enabled mask (cpu_amd64.s).
func xgetbv0() (eax, edx uint32)

// cpuFeatures is the feature set the tier selection consults.
type cpuFeatures struct {
	avx2, fma, f16c        bool
	avx512f, avx512dq      bool
	avx512bw, avx512vl     bool
	avx512bf16, avx512fp16 bool
	osYMM, osZMM           bool // OS saves the wide register states
}

// detectCPU reads the CPUID leaves backing cpuFeatures.
func detectCPU() cpuFeatures {
	var f cpuFeatures
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	f.fma = ecx1&(1<<12) != 0
	f.f16c = ecx1&(1<<29) != 0
	osxsave := ecx1&(1<<27) != 0
	hasAVX := ecx1&(1<<28) != 0
	if osxsave {
		xlo, _ := xgetbv0()
		f.osYMM = xlo&0x6 == 0x6              // XMM + YMM state
		f.osZMM = f.osYMM && xlo&0xe0 == 0xe0 // opmask + ZMM0-15 hi + ZMM16-31
	}
	if maxLeaf < 7 {
		return f
	}
	_, ebx7, _, edx7 := cpuidRaw(7, 0)
	f.avx2 = hasAVX && ebx7&(1<<5) != 0
	f.avx512f = ebx7&(1<<16) != 0
	f.avx512dq = ebx7&(1<<17) != 0
	f.avx512bw = ebx7&(1<<30) != 0
	f.avx512vl = ebx7&(1<<31) != 0
	f.avx512fp16 = edx7&(1<<23) != 0
	eax71, _, _, _ := cpuidRaw(7, 1)
	f.avx512bf16 = eax71&(1<<5) != 0
	return f
}

// detectKernels builds the tier list the CPU can execute, widest first.
// SSE2 is architecturally guaranteed on amd64, so the list always ends with
// the sse2 and generic tiers.
func detectKernels() []*kernel {
	f := detectCPU()
	var ks []*kernel
	if f.avx512f && f.avx512dq && f.avx512bw && f.avx512vl && f.osZMM {
		k := &kernel{
			tier:     "avx512",
			bl:       blockingFor(14, 16),
			kern:     microKernelAVX512Wrap,
			kernBF16: microKernelBF16Wrap,
			dot:      dotAVX512Wrap,
			minMax:   minMaxAVX512Wrap,
			quant8:   quantize8AVX512Wrap,
		}
		// fp16 storage decodes through VCVTPH2PS; gate it on the CPU
		// actually advertising half-precision conversion support.
		if f.f16c || f.avx512fp16 {
			k.kernFP16 = microKernelFP16Wrap
		} else {
			k.kernFP16 = microKernelLPGo(14, 16, fp16ToF32)
		}
		ks = append(ks, k)
	}
	if f.avx2 && f.fma && f.osYMM {
		ks = append(ks, &kernel{
			tier:     "avx2",
			bl:       blockingFor(8, 8),
			kern:     microKernelAVX2Wrap,
			kernBF16: microKernelLPGo(8, 8, bf16ToF32),
			kernFP16: microKernelLPGo(8, 8, fp16ToF32),
			dot:      dotAVX2Wrap,
			minMax:   minMaxAVX2Wrap,
			quant8:   quantize8AVX2Wrap,
		})
	}
	ks = append(ks, &kernel{
		tier:     "sse2",
		bl:       blockingFor(4, 8),
		kern:     microKernelSSEWrap,
		kernBF16: microKernelLPGo(4, 8, bf16ToF32),
		kernFP16: microKernelLPGo(4, 8, fp16ToF32),
		dot:      dotUnroll,
		minMax:   minMaxGo,
		quant8:   quantize8Go,
	}, genericKernel())
	return ks
}
