package tensor

// Blocking parameters of the packed GEMM engine, following the BLIS/GotoBLAS
// hierarchy the paper's KNL kernels are built on (You, Buluç & Demmel §4:
// cache blocking plus vectorization is what lifts single-node efficiency
// toward peak). The five loops around the micro-kernel partition C into
// NC-wide column slabs, the K dimension into KC-deep panels, and the M
// dimension into MC-tall blocks; inside a block the micro-kernel computes one
// MR×NR register tile per call from packed operand panels:
//
//	packed A panel: MR rows  × KC depth, laid out p-major (MR floats per k)
//	packed B panel: KC depth × NR cols, laid out p-major (NR floats per k)
//
// MR×NR is sized to the register file (4×8 float32 = eight 4-wide SSE
// accumulators on amd64), KC so one MR×KC A panel plus one KC×NR B panel sit
// in L1 (4·256·4B + 256·8·4B = 12 KiB), MC so the packed MC×KC A block stays
// L2-resident (128 KiB), and NC bounds the packed B slab. This mirrors the
// paper's MCDRAM/L2 blocking discussion at CPU-cache scale.
const (
	// MR is the register-tile height: rows of C produced per micro-kernel call.
	MR = 4
	// NR is the register-tile width: columns of C produced per micro-kernel call.
	NR = 8
	// MC is the M-dimension cache block: rows of A packed per L2-resident block.
	MC = 128
	// KC is the K-dimension cache block: depth of the packed A/B panels.
	KC = 256
	// NC is the N-dimension cache block: columns of B packed per slab.
	NC = 1024
)

// microKernelGo is the portable register-tiled micro-kernel and the bitwise
// reference for the amd64 assembly one: t[i*NR+j] = Σ_p ap[p*MR+i]·bp[p*NR+j].
// It processes rows in pairs so the sixteen live accumulators of a strip fit
// the register file without spilling; summation order over p is identical for
// every lane, which is what makes the two implementations interchangeable
// without perturbing the determinism contract.
func microKernelGo(ap, bp []float32, kc int, t *[MR * NR]float32) {
	if kc == 0 {
		*t = [MR * NR]float32{}
		return
	}
	for i := 0; i < MR; i += 2 {
		var c00, c01, c02, c03, c04, c05, c06, c07 float32
		var c10, c11, c12, c13, c14, c15, c16, c17 float32
		ai, bi := i, 0
		for p := 0; p < kc; p++ {
			a1, a0 := ap[ai+1], ap[ai]
			b7, b6, b5, b4 := bp[bi+7], bp[bi+6], bp[bi+5], bp[bi+4]
			b3, b2, b1, b0 := bp[bi+3], bp[bi+2], bp[bi+1], bp[bi]
			ai += MR
			bi += NR
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c04 += a0 * b4
			c05 += a0 * b5
			c06 += a0 * b6
			c07 += a0 * b7
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c14 += a1 * b4
			c15 += a1 * b5
			c16 += a1 * b6
			c17 += a1 * b7
		}
		t[i*NR+0], t[i*NR+1], t[i*NR+2], t[i*NR+3] = c00, c01, c02, c03
		t[i*NR+4], t[i*NR+5], t[i*NR+6], t[i*NR+7] = c04, c05, c06, c07
		t[(i+1)*NR+0], t[(i+1)*NR+1], t[(i+1)*NR+2], t[(i+1)*NR+3] = c10, c11, c12, c13
		t[(i+1)*NR+4], t[(i+1)*NR+5], t[(i+1)*NR+6], t[(i+1)*NR+7] = c14, c15, c16, c17
	}
}

// dotUnroll is the unrolled-accumulator dot product shared by MatVec and the
// small vector paths: four independent chains hide the floating-point add
// latency that a single running sum serializes on. The final reduction order
// ((s0+s1)+(s2+s3))+tail is fixed, so results are deterministic. The unroll
// width is its own constant — it matches the add-latency×throughput product,
// not the register-tile height MR.
func dotUnroll(a, b []float32) float32 {
	const lanes = 4
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+lanes <= n; i += lanes {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	var tail float32
	for ; i < n; i++ {
		tail += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3) + tail
}
