package tensor

import (
	"fmt"
	"os"
	"strings"
)

// The micro-kernel dispatch. One kernel tier is selected at init from the
// CPU's feature set (cpu_*.go) and drives every packed GEMM in the process:
// its register tile (MR×NR), the cache blocks derived from it, the fp32
// micro-kernel, the low-precision (bf16/fp16 storage, fp32 accumulate)
// micro-kernels, and the vector helpers (dot, min/max, quantize) that ride
// behind the same feature gate.
//
// Tiers, widest first:
//
//	avx512  16-lane 14×16 FMA tile   amd64 with AVX-512 F/DQ/BW/VL
//	avx2     8-lane  8×8  FMA tile   amd64 with AVX2+FMA
//	sse2     4-lane  4×8  mul+add    every amd64 (GOAMD64=v1 baseline)
//	neon     4-lane  8×8  FMA tile   every arm64
//	generic  pure Go 4×8  mul+add    everything else (and forced fallback)
//
// Selection honors GODEBUG downgrades exactly like the runtime's own
// internal/cpu: GODEBUG=cpu.avx512f=off (or cpu.avx512=off) hides AVX-512,
// cpu.avx2=off hides AVX2 and everything above it, cpu.fma=off and
// cpu.avx=off hide both FMA tiers, cpu.sse2=off / cpu.neon=off force the
// portable generic kernel, and cpu.all=off disables every optional tier.
// KernelTier reports the decision.

// kernel is one dispatch tier: its identity, blocking, and kernels. kern
// computes an MR×NR register tile from packed fp32 panels; kernBF16 and
// kernFP16 do the same from packed uint16 panels (bf16 / IEEE half storage)
// with fp32 accumulation. dot is the tier's vector dot product.
type kernel struct {
	tier     string
	bl       Blocking
	kern     func(ap, bp []float32, kc int, t *kernTile)
	kernBF16 func(ap, bp []uint16, kc int, t *kernTile)
	kernFP16 func(ap, bp []uint16, kc int, t *kernTile)
	dot      func(a, b []float32) float32
	minMax   func(x []float32) (lo, hi float32)
	quant8   func(v, out []float32, lo, scale, inv float32)
}

// active is the selected tier. It is written once at init (and by the
// test-only forceKernel); every GEMM entry point reads it. Switching tiers
// concurrently with running GEMMs is not supported.
var active *kernel

// availableKernels lists every tier the running CPU can execute, widest
// first. The GODEBUG-filtered head of this list becomes active.
var availableKernels []*kernel

func init() {
	availableKernels = detectKernels()
	active = pickKernel(availableKernels, godebugCPUOff())
}

// KernelTier reports the active GEMM micro-kernel tier: "avx512", "avx2",
// "sse2", "neon" or "generic". The tier is fixed at init from the CPU's
// feature set and the GODEBUG cpu.* downgrades.
func KernelTier() string { return active.tier }

// KernelBlocking reports the active tier's cache-blocking parameters.
func KernelBlocking() Blocking { return active.bl }

// pickKernel returns the first available tier that survives the GODEBUG
// downgrade set. The generic tier is always constructible, so the fallback
// is total.
func pickKernel(avail []*kernel, off map[string]bool) *kernel {
	for _, k := range avail {
		if kernelDisabled(k.tier, off) {
			continue
		}
		return k
	}
	return genericKernel()
}

// kernelDisabled applies the GODEBUG cpu.* flags to a tier, including the
// architectural dependencies (AVX-512 implies AVX2 implies AVX; both FMA
// tiers need FMA).
func kernelDisabled(tier string, off map[string]bool) bool {
	if off["all"] {
		return tier != "generic"
	}
	switch tier {
	case "avx512":
		return off["avx512f"] || off["avx512"] || off["avx2"] || off["avx"] || off["fma"]
	case "avx2":
		return off["avx2"] || off["avx"] || off["fma"]
	case "sse2":
		return off["sse2"]
	case "neon":
		return off["neon"]
	}
	return false
}

// godebugCPUOff parses the GODEBUG environment variable for cpu.<feature>=off
// settings, mirroring the runtime's internal/cpu: the returned set holds the
// lower-cased feature names explicitly disabled.
func godebugCPUOff() map[string]bool {
	return parseCPUOff(os.Getenv("GODEBUG"))
}

// parseCPUOff extracts the cpu.<feature>=off set from a GODEBUG string.
func parseCPUOff(godebug string) map[string]bool {
	off := map[string]bool{}
	for _, kv := range strings.Split(godebug, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || v != "off" {
			continue
		}
		if feat, ok := strings.CutPrefix(k, "cpu."); ok {
			off[strings.ToLower(feat)] = true
		}
	}
	return off
}

// forceKernel switches the active tier by name and returns a restore
// function. Test-only: callers must not have GEMMs in flight. Only tiers in
// availableKernels (plus generic) can be forced — a wider tier than the CPU
// supports is refused.
func forceKernel(tier string) (restore func(), err error) {
	prev := active
	if tier == "generic" {
		active = genericKernel()
		return func() { active = prev }, nil
	}
	for _, k := range availableKernels {
		if k.tier == tier {
			active = k
			return func() { active = prev }, nil
		}
	}
	return nil, fmt.Errorf("tensor: kernel tier %q not available on this CPU", tier)
}

// genericKernel is the portable pure-Go tier, constructible on every
// architecture: the 4×8 mul+add register tile, portable low-precision
// kernels, and the unrolled dot product.
func genericKernel() *kernel {
	return &kernel{
		tier:     "generic",
		bl:       blockingFor(4, 8),
		kern:     microKernelGo,
		kernBF16: microKernelLPGo(4, 8, bf16ToF32),
		kernFP16: microKernelLPGo(4, 8, fp16ToF32),
		dot:      dotUnroll,
		minMax:   minMaxGo,
		quant8:   quantize8Go,
	}
}

// microKernelGo is the portable register-tiled micro-kernel and the bitwise
// reference for the SSE2 assembly one: t[i*8+j] = Σ_p ap[p*4+i]·bp[p*8+j],
// a 4×8 tile at stride 8. It processes rows in pairs so the sixteen live
// accumulators of a strip fit the register file without spilling; summation
// order over p is identical for every lane, which is what makes the two
// implementations interchangeable without perturbing the determinism
// contract.
func microKernelGo(ap, bp []float32, kc int, t *kernTile) {
	const mr, nr = 4, 8
	if kc == 0 {
		for i := range t[:mr*nr] {
			t[i] = 0
		}
		return
	}
	for i := 0; i < mr; i += 2 {
		var c00, c01, c02, c03, c04, c05, c06, c07 float32
		var c10, c11, c12, c13, c14, c15, c16, c17 float32
		ai, bi := i, 0
		for p := 0; p < kc; p++ {
			a1, a0 := ap[ai+1], ap[ai]
			b7, b6, b5, b4 := bp[bi+7], bp[bi+6], bp[bi+5], bp[bi+4]
			b3, b2, b1, b0 := bp[bi+3], bp[bi+2], bp[bi+1], bp[bi]
			ai += mr
			bi += nr
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c04 += a0 * b4
			c05 += a0 * b5
			c06 += a0 * b6
			c07 += a0 * b7
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c14 += a1 * b4
			c15 += a1 * b5
			c16 += a1 * b6
			c17 += a1 * b7
		}
		t[i*nr+0], t[i*nr+1], t[i*nr+2], t[i*nr+3] = c00, c01, c02, c03
		t[i*nr+4], t[i*nr+5], t[i*nr+6], t[i*nr+7] = c04, c05, c06, c07
		t[(i+1)*nr+0], t[(i+1)*nr+1], t[(i+1)*nr+2], t[(i+1)*nr+3] = c10, c11, c12, c13
		t[(i+1)*nr+4], t[(i+1)*nr+5], t[(i+1)*nr+6], t[(i+1)*nr+7] = c14, c15, c16, c17
	}
}

// microKernelLPGo builds the portable low-precision micro-kernel for an
// mr×nr tile: packed uint16 panels are decoded element-wise (bf16 or IEEE
// half) and accumulated in fp32 with plain mul+add, k-ordered. It is the
// fallback for tiers without a low-precision assembly kernel and the
// semantic reference for the ones with.
func microKernelLPGo(mr, nr int, decode func(uint16) float32) func(ap, bp []uint16, kc int, t *kernTile) {
	return func(ap, bp []uint16, kc int, t *kernTile) {
		for i := range t[:mr*nr] {
			t[i] = 0
		}
		var bd [maxNR]float32
		for p := 0; p < kc; p++ {
			av := ap[p*mr : p*mr+mr]
			bv := bp[p*nr : p*nr+nr]
			for j, bb := range bv {
				bd[j] = decode(bb)
			}
			for i, ab := range av {
				a := decode(ab)
				row := t[i*nr : i*nr+nr]
				for j := range row {
					row[j] += a * bd[j]
				}
			}
		}
	}
}

// dotUnroll is the unrolled-accumulator dot product shared by MatVec and the
// small vector paths on tiers without an assembly dot: four independent
// chains hide the floating-point add latency that a single running sum
// serializes on. The final reduction order ((s0+s1)+(s2+s3))+tail is fixed,
// so results are deterministic. The unroll width is its own constant — it
// matches the add-latency×throughput product, not the register-tile height.
func dotUnroll(a, b []float32) float32 {
	const lanes = 4
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+lanes <= n; i += lanes {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	var tail float32
	for ; i < n; i++ {
		tail += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3) + tail
}
