package tensor

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestKernelTierReported sanity-checks the accessor pair: the reported tier
// is one of the known names and matches the head of the GODEBUG-filtered
// availability list, and the blocking geometry is self-consistent.
func TestKernelTierReported(t *testing.T) {
	known := map[string]bool{"avx512": true, "avx2": true, "sse2": true, "neon": true, "generic": true}
	if !known[KernelTier()] {
		t.Fatalf("unknown tier %q", KernelTier())
	}
	bl := KernelBlocking()
	if bl.MR < 1 || bl.NR < 1 || bl.MC%bl.MR != 0 || bl.NC%bl.NR != 0 || bl.KC < 1 {
		t.Fatalf("inconsistent blocking %+v", bl)
	}
	if got := pickKernel(availableKernels, godebugCPUOff()).tier; got != KernelTier() {
		t.Fatalf("KernelTier %q does not match selection %q", KernelTier(), got)
	}
}

// TestKernelDisabledDependencies pins the architectural downgrade rules the
// GODEBUG filter applies: hiding a lower tier hides everything above it.
func TestKernelDisabledDependencies(t *testing.T) {
	cases := []struct {
		godebug string
		dead    []string
		alive   []string
	}{
		{"", nil, []string{"avx512", "avx2", "sse2", "neon", "generic"}},
		{"cpu.avx512f=off", []string{"avx512"}, []string{"avx2", "sse2", "generic"}},
		{"cpu.avx512=off", []string{"avx512"}, []string{"avx2", "sse2"}},
		{"cpu.avx2=off", []string{"avx512", "avx2"}, []string{"sse2", "generic"}},
		{"cpu.avx=off", []string{"avx512", "avx2"}, []string{"sse2"}},
		{"cpu.fma=off", []string{"avx512", "avx2"}, []string{"sse2"}},
		{"cpu.sse2=off", []string{"sse2"}, []string{"avx512", "avx2", "generic"}},
		{"cpu.neon=off", []string{"neon"}, []string{"avx512", "generic"}},
		{"cpu.all=off", []string{"avx512", "avx2", "sse2", "neon"}, []string{"generic"}},
		{"http2client=0,cpu.avx2=off", []string{"avx2"}, []string{"sse2"}}, // unrelated GODEBUG noise
	}
	for _, c := range cases {
		off := parseCPUOff(c.godebug)
		for _, tier := range c.dead {
			if !kernelDisabled(tier, off) {
				t.Errorf("GODEBUG=%q: tier %s should be disabled", c.godebug, tier)
			}
		}
		for _, tier := range c.alive {
			if kernelDisabled(tier, off) {
				t.Errorf("GODEBUG=%q: tier %s should survive", c.godebug, tier)
			}
		}
	}
}

// TestKernelTierExpected is the subprocess half of TestDispatchMatrix: when
// SCALEDL_EXPECT_TIER is set it asserts that init-time dispatch (under the
// inherited GODEBUG) selected exactly that tier. Skipped in normal runs.
func TestKernelTierExpected(t *testing.T) {
	want := os.Getenv("SCALEDL_EXPECT_TIER")
	if want == "" {
		t.Skip("helper: driven by TestDispatchMatrix with SCALEDL_EXPECT_TIER set")
	}
	if got := KernelTier(); got != want {
		t.Fatalf("GODEBUG=%q: dispatched to %q, want %q", os.Getenv("GODEBUG"), got, want)
	}
}

// TestDispatchMatrix re-executes the test binary under each GODEBUG cpu.*
// downgrade and asserts the tier selected at init — the end-to-end check
// that the environment really steers process-startup dispatch, not just the
// in-process filter the other tests exercise. The expectation for each
// setting comes from the parent's own availability list, so the matrix
// adapts to whatever CPU it runs on.
func TestDispatchMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, godebug := range []string{
		"",
		"cpu.avx512f=off",
		"cpu.avx2=off",
		"cpu.fma=off",
		"cpu.sse2=off",
		"cpu.neon=off",
		"cpu.all=off",
	} {
		want := pickKernel(availableKernels, parseCPUOff(godebug)).tier
		cmd := exec.Command(exe, "-test.run", "^TestKernelTierExpected$", "-test.v")
		env := os.Environ()[:0:0]
		for _, kv := range os.Environ() {
			if strings.HasPrefix(kv, "GODEBUG=") || strings.HasPrefix(kv, "SCALEDL_EXPECT_TIER=") {
				continue
			}
			env = append(env, kv)
		}
		cmd.Env = append(env, "GODEBUG="+godebug, "SCALEDL_EXPECT_TIER="+want)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Errorf("GODEBUG=%q (want tier %s): %v\n%s", godebug, want, err, out)
			continue
		}
		if !strings.Contains(string(out), "PASS") {
			t.Errorf("GODEBUG=%q: subprocess did not pass:\n%s", godebug, out)
		}
	}
}

// TestForceKernelRefusesUnavailable pins forceKernel's guard: a tier the CPU
// cannot execute must be refused, and the restore function must reinstate
// the previous selection.
func TestForceKernelRefusesUnavailable(t *testing.T) {
	if _, err := forceKernel("no-such-tier"); err == nil {
		t.Fatal("forcing an unknown tier must fail")
	}
	prev := KernelTier()
	restore, err := forceKernel("generic")
	if err != nil {
		t.Fatal(err)
	}
	if KernelTier() != "generic" {
		t.Fatalf("force generic: active is %q", KernelTier())
	}
	restore()
	if KernelTier() != prev {
		t.Fatalf("restore: active is %q, want %q", KernelTier(), prev)
	}
}
