package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor. The zero value is an empty
// tensor; use New or Wrap to create usable ones. Data may alias other
// tensors (views are used heavily by the packed parameter layout of
// internal/nn, which is the paper's §5.2 single-buffer optimization).
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, Volume(shape))}
}

// Wrap creates a tensor view over an existing buffer. The buffer length must
// equal the shape volume; Wrap panics otherwise because a silent mismatch
// would corrupt adjacent parameters in a packed layout.
func Wrap(data []float32, shape ...int) *Tensor {
	if len(data) != Volume(shape) {
		panic(fmt.Sprintf("tensor: wrap %v over buffer of %d elements", shape, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Volume returns the number of elements implied by shape. An empty shape has
// volume 1 (a scalar).
func Volume(shape []int) int {
	v := 1
	for _, s := range shape {
		v *= s
	}
	return v
}

// Len returns the number of elements in the tensor.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Reshape returns a view of t with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Volume(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic("tensor: CopyFrom volume mismatch")
	}
	copy(t.Data, src.Data)
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given row-major indices.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given row-major indices.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for axis %d (size %d)", ix, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a compact shape/summary form.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(n=%d)", t.Shape, len(t.Data))
}

// ---- Elementwise and vector kernels ----
//
// These operate on raw slices as well as tensors so the distributed
// algorithms in internal/core can work directly on packed weight buffers.

// AXPY computes y += alpha*x elementwise. Slices must have equal length.
func AXPY(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b elementwise.
func Add(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s float32
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, accumulating in float64 for
// stability on long weight vectors.
func Norm2(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements of x (float64 accumulator).
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// MaxIndex returns the index of the maximum element of x (first wins ties).
// It returns -1 for an empty slice.
func MaxIndex(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Clamp limits every element of x to [lo, hi].
func Clamp(x []float32, lo, hi float32) {
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}
