package scaledl

import (
	"fmt"
	"io"

	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/data"
	"scaledl/internal/harness"
	"scaledl/internal/hw"
	"scaledl/internal/knl"
	"scaledl/internal/nn"
	"scaledl/internal/parse"
	"scaledl/internal/quant"
	"scaledl/internal/tensor"
)

// Core distributed-training types, re-exported from the implementation.
type (
	// Config describes one distributed training run (workers, batch size,
	// learning rate, elastic force ρ, iteration budget, platform, …).
	Config = core.Config
	// Result is the outcome: simulated time, time breakdown, accuracy
	// trajectory.
	Result = core.Result
	// Platform is the simulated hardware (devices, links, message plan).
	Platform = core.Platform
	// Breakdown is exposed time per §6.1.1 category.
	Breakdown = core.Breakdown
	// Category indexes the breakdown (communication and computation parts).
	Category = core.Category
	// Point is one sample of a training trajectory.
	Point = core.Point
	// GradEvent is the per-layer gradient-ready notification the streaming
	// backward walk emits (nn.Net.LossAndGradStream) — the dependency
	// structure Config.Overlap's bucketed communication pipeline keys on.
	GradEvent = nn.GradEvent

	// FaultPlan opens the failure-scenario space around the paper's
	// fault-free runs (Config.Faults): timing-only knobs (stragglers,
	// heterogeneity, fail-stop with checkpoint recovery) that never touch
	// the math, and semantic knobs (message loss/corruption with guarded
	// retries, fail-stop without recovery, partial aggregation) that may
	// change it — deterministically under the fault seed.
	FaultPlan = core.FaultPlan
	// BadLink adds per-link loss/corruption on one directed worker link.
	BadLink = core.BadLink
	// DropRecord names the ranks whose gradient a partial-aggregation step
	// dropped (Result.Dropped).
	DropRecord = core.DropRecord

	// NetDef is a reusable network definition; Shape a CHW activation shape.
	NetDef = nn.NetDef
	// LayerSpec declares one layer of a NetDef.
	LayerSpec = nn.LayerSpec
	// Shape is a channels×height×width activation geometry.
	Shape = nn.Shape
	// ModelCost is the cost-table view of a model (params, FLOPs per layer).
	ModelCost = nn.ModelCost

	// Dataset is an in-memory labeled image set; Spec its geometry.
	Dataset = data.Dataset
	// Spec describes dataset geometry (channels, size, classes, counts).
	Spec = data.Spec

	// KNLConfig configures the §6.2 chip-partitioning runtime.
	KNLConfig = knl.Config
	// KNLResult is a partitioned-chip run outcome.
	KNLResult = knl.Result

	// Experiment is a regenerable paper artifact; Report its output.
	Experiment = harness.Experiment
	// Report is a formatted experiment result.
	Report = harness.Report
	// Options controls experiment execution (seed, scale).
	Options = harness.Options
)

// Breakdown categories (the §6.1.1 parts), re-exported so results can be
// inspected through the facade.
const (
	CatGPUGPUParam     = core.CatGPUGPUParam
	CatCPUGPUData      = core.CatCPUGPUData
	CatCPUGPUParam     = core.CatCPUGPUParam
	CatForwardBackward = core.CatForwardBackward
	CatGPUUpdate       = core.CatGPUUpdate
	CatCPUUpdate       = core.CatCPUUpdate
	CatRecovery        = core.CatRecovery
	CatRetry           = core.CatRetry
	CatDropped         = core.CatDropped
	CatSFBRecon        = core.CatSFBRecon
)

// FaultPlan.FailMode values: reload-and-replay recovery (timing-only, the
// default) or kill-for-good with the survivors finishing at P−1.
const (
	FailRecover  = core.FailRecover
	FailContinue = core.FailContinue
)

// DefaultBucketBytes is the streaming pipeline's default gradient-bucket
// size (Config.BucketBytes = 0 means this).
const DefaultBucketBytes = core.DefaultBucketBytes

// Train runs the named distributed algorithm. Method names follow the
// paper: "original-easgd*", "original-easgd", "async-sgd", "async-msgd",
// "hogwild-sgd", "sync-sgd", "async-easgd", "async-measgd",
// "hogwild-easgd", "sync-easgd1", "sync-easgd2", "sync-easgd3" — plus the
// hierarchical multi-node extensions "hier-sync-sgd" and "hier-sync-easgd",
// which train Config.Nodes × Config.GPUsPerNode workers on a composed
// per-node-PCIe-trees-under-fabric topology (Config.HierSchedule selects
// the inter-node collective schedule, Config.TauLocal/TauGlobal pace the
// node-group elastic averaging of hier-sync-easgd).
//
// Config.Overlap turns on the layer-streaming communication pipeline for
// the families that support it (SyncSGD's bucketed overlapped allreduce,
// async SGD-style streamed uploads, the round-robin master's per-bucket
// pulls, KNLClusterEASGD's streamed center broadcast); Config.BucketBytes
// sets the bucket coalescing size. Sync EASGD3 always overlaps — the
// paper's definition — through the same pipeline.
func Train(method string, cfg Config) (Result, error) {
	run, ok := core.Methods[method]
	if !ok {
		return Result{}, fmt.Errorf("scaledl: unknown method %q (one of %v)", method, core.MethodNames())
	}
	return run(cfg)
}

// Methods lists the available training methods in the paper's order.
func Methods() []string { return core.MethodNames() }

// DefaultGPUPlatform returns the paper's 4-GPU node model; packed selects
// the §5.2 single-buffer communication layout.
func DefaultGPUPlatform(packed bool) Platform { return core.DefaultGPUPlatform(packed) }

// Model zoo.

// LeNet is the classic Caffe LeNet (431,080 parameters) the paper trains on
// MNIST.
func LeNet(in Shape, classes int) NetDef { return nn.LeNet(in, classes) }

// TinyCNN is the scaled-down convnet used by the fast experiments.
func TinyCNN(in Shape, classes int) NetDef { return nn.TinyCNN(in, classes) }

// CIFARQuick is the Caffe cifar10_quick-style network.
func CIFARQuick(in Shape, classes int) NetDef { return nn.CIFARQuick(in, classes) }

// MiniGoogleNet is a small executable inception network (real parallel
// branches with channel concatenation), the runnable counterpart of the
// GoogleNetCost table.
func MiniGoogleNet(in Shape, classes int) NetDef { return nn.MiniGoogleNet(in, classes) }

// Inception builds one GoogleNet inception module spec (1×1, 1×1→3×3,
// 1×1→5×5 and pool→1×1 branches) for use inside a NetDef.
func Inception(c1, r3, c3, r5, c5, pp int) LayerSpec { return nn.Inception(c1, r3, c3, r5, c5, pp) }

// AlexNetCost, VGG19Cost and GoogleNetCost return the exact-dimension cost
// tables of the paper's ImageNet models.
func AlexNetCost() ModelCost   { return nn.AlexNetCost() }
func VGG19Cost() ModelCost     { return nn.VGG19Cost() }
func GoogleNetCost() ModelCost { return nn.GoogleNetCost() }

// Datasets. The paper's Table 1 geometries with synthetic, learnable,
// seeded content (see DESIGN.md for the substitution rationale).

// SyntheticMNIST returns normalized train/test sets with MNIST geometry
// (1×28×28, 10 classes).
func SyntheticMNIST(seed int64, trainN, testN int) (train, test *Dataset) {
	return syntheticPair(data.MNISTSpec, seed, trainN, testN, 1.5)
}

// SyntheticCIFAR returns normalized train/test sets with CIFAR geometry
// (3×32×32, 10 classes).
func SyntheticCIFAR(seed int64, trainN, testN int) (train, test *Dataset) {
	return syntheticPair(data.CIFARSpec, seed, trainN, testN, 1.2)
}

// Synthetic generates a dataset with arbitrary geometry and noise.
func Synthetic(spec Spec, seed int64, trainN, testN int, noise float64) (train, test *Dataset) {
	return syntheticPair(spec, seed, trainN, testN, noise)
}

func syntheticPair(spec Spec, seed int64, trainN, testN int, noise float64) (train, test *Dataset) {
	train, test = data.Synthetic(data.Config{
		Spec: spec, Seed: seed, TrainN: trainN, TestN: testN, Noise: noise,
	})
	train.Normalize()
	test.Normalize()
	return train, test
}

// KNL chip partitioning (§6.2).

// RunKNLPartition executes a partitioned-chip training run (Figure 12's
// engine).
func RunKNLPartition(cfg KNLConfig) (KNLResult, error) { return knl.Run(cfg) }

// NewKNL7250 returns the paper's KNL node model with the given workload
// efficiency.
func NewKNL7250(eff float64) hw.KNLChip { return hw.NewKNL7250(eff) }

// MaxKNLPartsFittingMCDRAM applies the paper's MCDRAM fit rule ("at most 16
// copies of weight and data" for AlexNet+CIFAR).
func MaxKNLPartsFittingMCDRAM(weightBytes, dataCopyBytes int64) int {
	return knl.MaxPartsFittingMCDRAM(hw.NewKNL7250(0.1), weightBytes, dataCopyBytes)
}

// Experiments: every table and figure of the paper's evaluation.

// Experiments lists the regenerable artifacts (table2, table3, table4,
// fig6.1-fig6.4, fig8, fig10-fig13, batch, ablation).
func Experiments() []Experiment { return harness.List() }

// RunExperiment executes one experiment by ID.
func RunExperiment(id string, o Options) (*Report, error) {
	e, err := harness.Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o)
}

// RunAllExperiments executes every experiment in ID order.
func RunAllExperiments(o Options) ([]*Report, error) { return harness.RunAll(o) }

// WeakScalingEfficiency returns the Table 4 model's efficiency for
// "googlenet" or "vgg19" at the given node count (68 cores per node).
func WeakScalingEfficiency(model string, nodes int) (float64, error) {
	return harness.WeakScalingEfficiency(model, nodes)
}

// Extensions beyond the paper's evaluation.

// ParseError is what every facade name parser returns for an unrecognized
// name: the flag-ish field being parsed, the offending value, and the full
// allowed set, rendered uniformly as
//
//	unknown <field> "<value>" (one of a, b, c)
//
// so scaledl-train and scaledl-serve print consistent flag errors.
// Retrieve it with errors.As to list the allowed values programmatically.
type ParseError = parse.Error

// CompressionScheme selects low-precision gradient transmission for
// Config.Compression (§3.4's future-work direction): quant.None,
// quant.OneBit (1-bit SGD with error feedback) or quant.Uniform8.
type CompressionScheme = quant.Scheme

// Compression schemes.
const (
	CompressNone   = quant.None
	CompressOneBit = quant.OneBit
	CompressUint8  = quant.Uniform8
)

// ParseCompressionScheme converts a scheme name ("none", "onebit",
// "uniform8"; empty means none) for Config.Compression.
func ParseCompressionScheme(name string) (CompressionScheme, error) {
	return quant.ParseScheme(name)
}

// CompressionSchemes lists the scheme names ParseCompressionScheme accepts.
func CompressionSchemes() []string { return quant.Schemes() }

// KernelTier reports the GEMM micro-kernel tier the process dispatched to at
// startup from the CPU's feature set: "avx512", "avx2", "sse2", "neon" or
// "generic". GODEBUG=cpu.<feature>=off downgrades it exactly like the Go
// runtime's own dispatch. Benchmarks record this so numbers from different
// tiers are never compared against each other.
func KernelTier() string { return tensor.KernelTier() }

// ComputePrecision selects the GEMM operand storage precision for
// Config.ComputePrec: "fp32" (default), "bf16" or "fp16". Packed operand
// panels are narrowed to the chosen format while accumulation stays fp32.
type ComputePrecision = tensor.Precision

// Compute precisions.
const (
	PrecFloat32  = tensor.Float32
	PrecBFloat16 = tensor.BFloat16
	PrecFloat16  = tensor.Float16
)

// ParseComputePrecision converts a precision name ("fp32", "bf16", "fp16";
// empty means fp32) for Config.ComputePrec.
func ParseComputePrecision(s string) (ComputePrecision, error) { return tensor.ParsePrecision(s) }

// ComputePrecisions lists the precision names ParseComputePrecision
// accepts.
func ComputePrecisions() []string { return tensor.Precisions() }

// ParseFailMode validates a FaultPlan.FailMode name ("recover",
// "continue"; empty means recover).
func ParseFailMode(name string) (string, error) { return core.ParseFailMode(name) }

// FailModes lists the names ParseFailMode accepts.
func FailModes() []string { return core.FailModes() }

// KNLClusterConfig configures Algorithm 4 run as a real rank program over
// the message-level collective engine (internal/comm).
type KNLClusterConfig = core.KNLClusterConfig

// TrainKNLCluster runs Algorithm 4 (Communication-Efficient EASGD on a
// KNL cluster) with real message-passing collectives between simulated
// rank processes.
func TrainKNLCluster(cfg KNLClusterConfig) (Result, error) {
	return core.KNLClusterEASGD(cfg)
}

// CommMode selects the gradient transport of the allreduce methods for
// Config.CommMode: dense (every layer allreduces its full gradient, the
// default), sfb (every dense layer ships B·(F+D) sufficient factors —
// Poseidon's sufficient-factor broadcasting — and receivers reconstruct
// Σₚ dYₚᵀ·Xₚ locally), or hybrid (the per-layer winner of the analytic
// α-β cost model). The transport changes where bytes move, never what is
// summed: reconstruction is bit-identical to the dense allreduce.
type CommMode = core.CommMode

// Gradient transports for Config.CommMode.
const (
	CommDense  = core.CommDense
	CommSFB    = core.CommSFB
	CommHybrid = core.CommHybrid
)

// ParseCommMode converts a transport name ("dense", "sfb", "hybrid"; empty
// means dense) for Config.CommMode.
func ParseCommMode(name string) (CommMode, error) { return core.ParseCommMode(name) }

// CommModes lists the transport names ParseCommMode accepts.
func CommModes() []string { return core.CommModes() }

// HybridSelector holds the per-layer transport verdicts of one run
// configuration; LayerCommChoice is one layer's cost-model row (dense vs
// factor wire bytes and analytic times, and the transport the run uses).
type (
	HybridSelector  = core.HybridSelector
	LayerCommChoice = core.LayerCommChoice
)

// SelectCommModes runs the hybrid communication selector for a
// configuration without training: per parameter layer, the analytic cost of
// the dense allreduce versus the sufficient-factor allgather plus
// reconstruction, and the transport Config.CommMode routes it to — the
// cost-model entry point behind scaledl-train's -verbose-comm and the
// "hybrid" experiment.
func SelectCommModes(cfg Config) (*HybridSelector, error) { return core.SelectCommModes(cfg) }

// CollectiveSchedule selects the message pattern of the simulated
// allreduce collectives for Config.Schedule: tree (default), ring,
// recursive halving/doubling, pipelined chain, or the linear baseline.
type CollectiveSchedule = comm.Schedule

// ParseCollectiveSchedule converts a schedule name ("tree", "ring", "rhd",
// "chain", "linear") for Config.Schedule.
func ParseCollectiveSchedule(name string) (CollectiveSchedule, error) {
	return comm.ParseSchedule(name)
}

// CollectiveSchedules lists the schedule names the engine implements.
func CollectiveSchedules() []string { return comm.Schedules() }

// SimulatedAllReduceTime executes one message-level allreduce of nBytes
// over parties nodes on a contention-free α-β link under the named
// schedule and returns the simulated seconds — the engine the training
// algorithms communicate through, exposed for cost exploration.
func SimulatedAllReduceTime(schedule string, nBytes int64, parties int, alpha, betaSecPerByte float64) (float64, error) {
	link := hw.Link{Name: "custom", Alpha: alpha, Beta: betaSecPerByte}
	return harness.SimulateAllReduce(schedule, link, nBytes, parties)
}

// AnalyticAllReduceTime returns the closed-form α-β prediction for the
// named schedule — the analytic oracle the engine is verified against on
// contention-free topologies. The pipelined chain has no closed form.
func AnalyticAllReduceTime(schedule string, nBytes int64, parties int, alpha, betaSecPerByte float64) (float64, error) {
	sched, err := comm.ParseSchedule(schedule)
	if err != nil {
		return 0, err
	}
	link := hw.Link{Name: "custom", Alpha: alpha, Beta: betaSecPerByte}
	t, ok := sched.AnalyticAllReduceTime(link, nBytes, parties)
	if !ok {
		return 0, fmt.Errorf("scaledl: no closed form for schedule %q", schedule)
	}
	return t, nil
}

// AnalyticHierAllReduceTime returns the composed two-level oracle of the
// hierarchical allreduce — intra-node reduce (intra schedule) + inter-node
// allreduce among one leader per node (inter schedule) + intra-node
// broadcast — on α-β links for the two levels. It is what the simulated
// comm.HierAllReduce completes at exactly on contention-free composed
// topologies. The pipelined chain has no closed form at either level.
func AnalyticHierAllReduceTime(intraSchedule, interSchedule string, nBytes int64, nodes, gpusPerNode int,
	intraAlpha, intraBeta, interAlpha, interBeta float64) (float64, error) {
	intra, err := comm.ParseSchedule(intraSchedule)
	if err != nil {
		return 0, err
	}
	inter, err := comm.ParseSchedule(interSchedule)
	if err != nil {
		return 0, err
	}
	t, ok := comm.HierAllReduceTime(
		hw.Link{Name: "intra", Alpha: intraAlpha, Beta: intraBeta},
		hw.Link{Name: "inter", Alpha: interAlpha, Beta: interBeta},
		nBytes, nodes, gpusPerNode, intra, inter)
	if !ok {
		return 0, fmt.Errorf("scaledl: no closed form for schedule pair %q/%q", intraSchedule, interSchedule)
	}
	return t, nil
}

// Model is the trained-network handle the facade hands out: an opaque wrap
// of the underlying net with snapshot (Save/LoadModel), batched inference
// (Predict/PredictInto) and int8 post-training quantization (QuantizeInt8).
// Train results expose one through Result.Model, so train → snapshot →
// serve composes without naming any internal type. Models are not
// concurrency-safe; the serving batcher (internal/serve, cmd/scaledl-serve)
// is the concurrent front end.
type Model = nn.Model

// BuildModel instantiates a model from an architecture definition with
// seeded parameter initialization (an untrained Model; Train is the usual
// source of trained ones).
func BuildModel(def NetDef, seed int64) *Model { return nn.NewModel(def.Build(seed)) }

// LoadModel restores a model saved with Model.Save (either the fp32 v1
// format SaveNet always wrote or the int8 v2 format quantized models
// write).
func LoadModel(r io.Reader) (*Model, error) { return nn.LoadModel(r) }

// SaveNet serializes a trained network (architecture + packed parameters).
//
// Deprecated: use Model.Save via Result.Model or NewModel; SaveNet leaks
// the internal net type. The bytes written are identical.
func SaveNet(n *nn.Net, w io.Writer) error { return n.Save(w) }

// LoadNet restores a network saved with SaveNet.
//
// Deprecated: use LoadModel; it accepts the same snapshots.
func LoadNet(r io.Reader) (*nn.Net, error) { return nn.Load(r) }

// LRSchedule and the schedule types support the §7.2 retuning rules.
type (
	// LRSchedule maps iteration → learning rate.
	LRSchedule = nn.LRSchedule
	// Warmup ramps linearly to the base rate, then delegates.
	Warmup = nn.Warmup
	// StepDecay is Caffe's "step" policy.
	StepDecay = nn.StepDecay
	// PolyDecay is Caffe's "poly" policy.
	PolyDecay = nn.PolyDecay
)

// LinearScaledLR and SqrtScaledLR apply the batch-size scaling rules §7.2
// alludes to.
func LinearScaledLR(baseLR float32, refBatch, batch int) (float32, error) {
	return nn.LinearScaledLR(baseLR, refBatch, batch)
}

// SqrtScaledLR is the conservative square-root scaling rule.
func SqrtScaledLR(baseLR float32, refBatch, batch int) (float32, error) {
	return nn.SqrtScaledLR(baseLR, refBatch, batch)
}
