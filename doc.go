// Package scaledl is a from-scratch Go reproduction of "Scaling Deep
// Learning on GPU and Knights Landing clusters" (You, Buluç, Demmel — SC'17,
// DOI 10.1145/3126908.3126912).
//
// The paper redesigns Elastic Averaging SGD (EASGD) for HPC systems. Its
// original round-robin master talks to one worker at a time in rank order —
// Θ(P) communication per sweep — which wastes an HPC cluster's fast
// interconnect. The paper contributes, in increasing strength:
//
//   - Async EASGD: round-robin replaced with first-come-first-served
//     parameter-server scheduling, with the worker's gradient overlapping
//     the round trip.
//   - Async MEASGD: momentum added to the local update.
//   - Hogwild EASGD: the master's lock removed; concurrent lock-free
//     elastic updates.
//   - Sync EASGD 1/2/3: a deterministic synchronous variant built on
//     Θ(log P) tree collectives, with three algorithm/system co-design
//     steps: tree reduction plus the §5.2 packed single-buffer parameter
//     layout; the center weight moved onto a GPU so parameter traffic rides
//     peer-to-peer DMA; and communication overlapped with computation.
//     Sync EASGD3 cuts communication from 87% to 14% of iteration time and
//     is 5.3× faster than the original EASGD at equal accuracy.
//   - A Knights Landing chip-partitioning scheme (§6.2) that divides the
//     chip into NUMA-local groups with replicated weights and data held in
//     MCDRAM — 3.3× faster to equal accuracy, bounded at 16 partitions by
//     the MCDRAM fit rule.
//
// # What this module provides
//
// Everything the paper's evaluation needs is implemented from scratch on
// the Go standard library:
//
//   - a dense float32 tensor/BLAS substrate — every matrix product runs
//     through one BLIS-style packed, register-tiled GEMM engine
//     (MC/KC/NC cache blocking, MR×NR micro-kernel, SSE2 assembly on
//     amd64, transposition absorbed at pack time, zero allocations in
//     steady state; see internal/tensor and the README's measured table)
//     — and a real neural-network framework (conv/pool/dense/activation/
//     LRN/dropout layers, packed contiguous parameter buffers, Xavier
//     init, softmax cross-entropy with the bias add fused into the GEMM
//     epilogue);
//   - a model zoo: executable LeNet and CIFAR networks, plus
//     exact-dimension cost tables for AlexNet (61.0M parameters), VGG-19
//     (143.7M) and GoogleNet (7.0M);
//   - seeded synthetic MNIST/CIFAR/ImageNet-shaped datasets (the real
//     downloads are unavailable offline; DESIGN.md documents the
//     substitution);
//   - a deterministic discrete-event simulator with α-β network models
//     (Table 2's InfiniBand constants), GPU/PCIe and KNL/Aries hardware
//     models, MCDRAM modes and cluster modes;
//   - a message-level collective engine (internal/comm): Broadcast,
//     Reduce and AllReduce executed as simulated message waves of real
//     float32 segments over a Topology (PCIe tree with a shared-switch
//     resource, host links, fabric cliques, memory buses), under
//     selectable schedules — binomial tree, ring, recursive
//     halving/doubling, pipelined chain, linear — with packed versus
//     per-layer message plans and per-message compressed wire sizes. The
//     closed-form α-β cost functions remain as the analytic oracle: on
//     contention-free topologies the simulated collectives match them to
//     1e-9, and reduced values are bit-identical to comm.ReduceSum for
//     every schedule;
//   - hierarchical two-level clusters (comm.NewMultiLevel): per-node
//     sub-topologies (PCIe trees) composed under an inter-node fabric with
//     an optional per-node NIC concurrency bound, and hierarchical
//     collectives (comm.HierCommunicator) in the intra-reduce →
//     leader-allreduce → intra-broadcast shape, with independently
//     selectable schedules per level. Both engine invariants extend to the
//     composition: completion matches the composed oracle
//     (comm.HierAllReduceTime) on contention-free topologies, and the
//     intra phase gathers global-rank-tagged contribution lists so
//     HierAllReduce stays bit-identical to ReduceSum for every
//     (intra, inter) schedule pair, including the bucketed Range variants
//     the streaming pipeline uses. Config.Nodes/GPUsPerNode select the
//     composed cluster for two training methods: "hier-sync-sgd" (the
//     SyncSGD loop over a hierarchical endpoint — flat mathematics bit for
//     bit, Config.HierSchedule picking the fabric schedule) and
//     "hier-sync-easgd" (node-group elastic averaging, group syncs every
//     Config.TauLocal steps and fabric center syncs every
//     Config.TauGlobal);
//   - a layer-streaming backprop pipeline (the architecture of Poseidon's
//     wait-free backprop and FireCaffe's per-layer reduction trees): the
//     backward walk emits per-layer gradient-ready events
//     (nn.Net.LossAndGradStream), a comm.Bucketizer coalesces ready layers
//     into ~Config.BucketBytes buckets along plan-segment boundaries, and
//     per-bucket Range collectives run as distinct in-flight rounds — so
//     with Config.Overlap on, communication hides under the tail of
//     backprop as a consequence of the dependency structure, with only the
//     exposed share charged to the time breakdown (Breakdown.HiddenComm
//     reports the hidden share) and gradient math bit-identical to the
//     monolithic path;
//   - all twelve distributed algorithms of the paper (the contributions and
//     every baseline) plus the hierarchical multi-node methods, running
//     real gradient math under simulated time;
//   - an experiment harness that regenerates every table and figure of the
//     paper's evaluation (Tables 2-4, Figures 6, 8, 10-13) plus a batch-size
//     study, a co-design ablation, an overlap × bucket-size × schedule
//     ablation of the streaming pipeline, and a hierarchical-versus-flat
//     collective and training sweep on composed PCIe+fabric clusters (the
//     "hier" experiment);
//   - a batched inference server (internal/serve, cmd/scaledl-serve)
//     behind the public Model API: training's Result.Model() saves to a
//     versioned snapshot (optionally int8 post-training quantized),
//     LoadModel reloads it, and the HTTP server coalesces concurrent
//     /v1/predict requests into batched forwards with deadline-bounded
//     admission, load shedding (429 + Retry-After) and graceful drain.
//     Two contracts are pinned by tests: batching is bit-identical (a
//     batch-of-N forward equals N batch-of-1 forwards at fp32) and the
//     steady-state batching hot path is allocation-free;
//   - a CI benchmark-regression gate (cmd/benchgate) comparing fresh
//     microbenchmark runs against the checked-in BENCH_*.json baselines:
//     deterministic simulated collective times (sim_ms), GEMM GFLOPS and
//     serving req/s are gated at 15% (serving allocs/op exactly), so
//     performance drift fails the pull request instead of landing
//     silently.
//
// # Execution model
//
// Virtual time and real work are scheduled by two separate engines:
//
//   - internal/sim is a deterministic discrete-event kernel. Simulated
//     entities (GPU workers, parameter-server masters, KNL ranks, the
//     collective engine's message waves) run as goroutine-backed
//     processes; exactly one executes at any virtual instant, so the
//     *timeline* of a run is a pure function of its inputs. Communication
//     is simulated at message granularity: every collective hop pays its
//     path's α-β cost and queues on shared segments, the streaming
//     pipeline's bucket collectives genuinely run (sim.Fork, bounded
//     in-flight) beneath the backward walk — Sync EASGD3's overlap and
//     Sync SGD's hidden allreduce are its consequences — and contention
//     emerges from scheduling.
//   - internal/par is a process-wide bounded work pool (width = GOMAXPROCS
//     by default) that the *real* mathematics runs on. The paper's workers
//     are embarrassingly parallel between reductions, and the
//     implementation exploits that literally: the synchronous algorithms
//     fan their P gradient computations out with par.For; the
//     process-per-worker algorithms (async, round-robin, KNL cluster)
//     start each gradient with par.Submit, yield virtual time, and join
//     before the result is used, so the replicas' forward/backward passes
//     genuinely overlap on the host; the convolution batch fan-out and the
//     GEMM row fan-out schedule on the same pool, so nested parallelism
//     (worker × conv-chunk × GEMM-row) degrades to inline execution
//     instead of oversubscribing the machine.
//
// Parallel execution never changes results: work is assigned to fixed
// index ranges, every unit writes only index-distinct state, and all
// floating-point reductions (gradient sums, loss averages, partial-dW
// merges) happen in fixed slice order after the join. A run's Result is
// bit-identical to serial execution (par.SetSerial) at the same width,
// and the packed GEMM is stronger still: its fan-out only partitions
// output rows, so every element keeps its k-ordered summation and GEMM
// results are bit-identical across pool widths too.
//
// # Quick start
//
//	train, test := scaledl.SyntheticMNIST(1, 2048, 512)
//	cfg := scaledl.Config{
//		Def:        scaledl.TinyCNN(scaledl.Shape{C: 1, H: 28, W: 28}, 10),
//		Train:      train,
//		Test:       test,
//		Workers:    4,
//		Batch:      32,
//		LR:         0.05,
//		Iterations: 100,
//		Seed:       1,
//		Platform:   scaledl.DefaultGPUPlatform(true),
//		EvalEvery:  10,
//	}
//	res, err := scaledl.Train("sync-easgd3", cfg)
//
// The trained model then rides the serving path:
//
//	var snap bytes.Buffer
//	res.Model().Save(&snap)               // versioned snapshot
//	m, err := scaledl.LoadModel(&snap)    // reload anywhere
//	logits, err := m.Predict(input, 1)    // or serve it: cmd/scaledl-serve
//
// See the examples/ directory for runnable programs, cmd/scaledl-bench
// for the experiment runner and cmd/scaledl-serve for the inference
// server.
package scaledl
