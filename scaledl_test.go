package scaledl

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestTrainViaFacade(t *testing.T) {
	train, test := SyntheticMNIST(1, 512, 128)
	cfg := Config{
		Def:        TinyCNN(Shape{C: 1, H: 28, W: 28}, 10),
		Train:      train,
		Test:       test,
		Workers:    4,
		Batch:      16,
		LR:         0.05,
		Iterations: 40,
		Seed:       1,
		Platform:   DefaultGPUPlatform(true),
		EvalEvery:  10,
	}
	res, err := Train("sync-easgd3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.5 {
		t.Errorf("accuracy %.3f too low", res.FinalAcc)
	}
	if res.SimTime <= 0 || len(res.Curve) == 0 {
		t.Errorf("result incomplete: %+v", res)
	}
}

func TestTrainOverlapViaFacade(t *testing.T) {
	train, test := SyntheticMNIST(1, 512, 128)
	mk := func(overlap bool) Config {
		return Config{
			Def:         TinyCNN(Shape{C: 1, H: 28, W: 28}, 10),
			Train:       train,
			Test:        test,
			Workers:     4,
			Batch:       16,
			LR:          0.05,
			Iterations:  30,
			Seed:        1,
			Platform:    DefaultGPUPlatform(true),
			Overlap:     overlap,
			BucketBytes: 8 << 10,
		}
	}
	off, err := Train("sync-sgd", mk(false))
	if err != nil {
		t.Fatal(err)
	}
	on, err := Train("sync-sgd", mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if on.FinalLoss != off.FinalLoss || on.FinalAcc != off.FinalAcc {
		t.Errorf("streaming changed training math: loss %v vs %v, acc %v vs %v",
			on.FinalLoss, off.FinalLoss, on.FinalAcc, off.FinalAcc)
	}
	if on.SimTime >= off.SimTime {
		t.Errorf("overlap did not reduce simulated time: %v vs %v", on.SimTime, off.SimTime)
	}
	if on.Breakdown.HiddenComm <= 0 {
		t.Error("no hidden communication reported through the facade")
	}
	if on.Breakdown.Times[CatForwardBackward] <= 0 {
		t.Error("category constants not usable through the facade")
	}
}

func TestTrainUnknownMethod(t *testing.T) {
	_, err := Train("sgd-9000", Config{})
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("got %v", err)
	}
}

func TestMethodsList(t *testing.T) {
	ms := Methods()
	if len(ms) != 14 {
		t.Fatalf("want 14 methods, got %d", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		seen[m] = true
	}
	for _, want := range []string{"original-easgd", "hogwild-easgd", "sync-easgd3", "async-measgd", "hier-sync-sgd", "hier-sync-easgd"} {
		if !seen[want] {
			t.Errorf("missing method %q", want)
		}
	}
}

func TestModelZooFacade(t *testing.T) {
	if n := LeNet(Shape{C: 1, H: 28, W: 28}, 10).Build(1).ParamCount(); n != 431080 {
		t.Errorf("LeNet params %d", n)
	}
	if p := VGG19Cost().TotalParams(); p < 143_000_000 {
		t.Errorf("VGG19 params %d", p)
	}
	if p := GoogleNetCost().TotalParams(); p > 8_000_000 {
		t.Errorf("GoogleNet params %d", p)
	}
	if p := AlexNetCost().TotalParams(); p < 60_000_000 {
		t.Errorf("AlexNet params %d", p)
	}
}

func TestSyntheticDatasets(t *testing.T) {
	train, test := SyntheticCIFAR(2, 256, 64)
	if train.Spec.SampleDim() != 3*32*32 || test.Len() != 64 {
		t.Errorf("CIFAR geometry wrong: %+v", train.Spec)
	}
	spec := Spec{Name: "custom", Channels: 2, Height: 8, Width: 8, Classes: 3}
	tr, te := Synthetic(spec, 3, 100, 20, 0.5)
	if tr.Len() != 100 || te.Len() != 20 {
		t.Errorf("custom synthetic sizes wrong")
	}
}

func TestKNLFacade(t *testing.T) {
	if got := MaxKNLPartsFittingMCDRAM(249<<20, 687<<20); got != 16 {
		t.Errorf("MCDRAM fit = %d, paper says 16", got)
	}
	train, test := SyntheticCIFAR(1, 256, 64)
	res, err := RunKNLPartition(KNLConfig{
		Chip:   NewKNL7250(0.1),
		Parts:  4,
		Def:    TinyCNN(Shape{C: 3, H: 32, W: 32}, 10),
		Train:  train,
		Test:   test,
		Batch:  8,
		LR:     0.05,
		Rounds: 10,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime <= 0 || res.Rounds != 10 {
		t.Errorf("KNL run incomplete: %+v", res)
	}
}

func TestExtensionsFacade(t *testing.T) {
	// Save/Load round trip through the facade.
	net := TinyCNN(Shape{C: 1, H: 8, W: 8}, 3).Build(5)
	var buf strings.Builder
	if err := SaveNet(net, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNet(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ParamCount() != net.ParamCount() {
		t.Error("loaded model differs")
	}

	// Compression through the facade.
	train, test := SyntheticMNIST(1, 256, 64)
	cfg := Config{
		Def: TinyCNN(Shape{C: 1, H: 28, W: 28}, 10), Train: train, Test: test,
		Workers: 2, Batch: 8, LR: 0.05, Iterations: 10, Seed: 1,
		Platform: DefaultGPUPlatform(true), Compression: CompressOneBit,
	}
	if _, err := Train("sync-sgd", cfg); err != nil {
		t.Fatal(err)
	}

	// Algorithm 4 rank program through the facade.
	cfg.Compression = CompressNone
	if _, err := TrainKNLCluster(KNLClusterConfig{Config: cfg}); err != nil {
		t.Fatal(err)
	}

	// LR schedules.
	w := Warmup{Base: 0.4, Div: 10, WarmupIters: 10}
	if w.At(10) != 0.4 {
		t.Error("warmup facade broken")
	}
	if lr, err := LinearScaledLR(0.1, 32, 64); err != nil || lr != 0.2 {
		t.Errorf("linear scaling: %v, %v", lr, err)
	}
	if lr, err := SqrtScaledLR(0.1, 64, 64); err != nil || lr != 0.1 {
		t.Errorf("sqrt scaling: %v, %v", lr, err)
	}
}

// The Model facade and the deprecated SaveNet/LoadNet wrappers share one
// snapshot format: the bytes are identical, so existing snapshots keep
// loading through either door.
func TestModelFacade(t *testing.T) {
	def := TinyCNN(Shape{C: 1, H: 8, W: 8}, 3)
	var old bytes.Buffer
	if err := SaveNet(def.Build(5), &old); err != nil {
		t.Fatal(err)
	}
	m := BuildModel(def, 5)
	var snap bytes.Buffer
	if err := m.Save(&snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old.Bytes(), snap.Bytes()) {
		t.Errorf("Model.Save bytes differ from SaveNet (%d vs %d bytes)", snap.Len(), old.Len())
	}

	reloaded, err := LoadModel(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, reloaded.InputDim())
	for i := range in {
		in[i] = float32(i%7) / 7
	}
	want, err := m.Predict(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reloaded.Predict(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reloaded logit %d: %v != %v", i, got[i], want[i])
		}
	}

	// Int8 quantization through the facade survives its own round trip.
	if n := reloaded.QuantizeInt8(); n == 0 {
		t.Error("QuantizeInt8 touched no layers")
	}
	var q bytes.Buffer
	if err := reloaded.Save(&q); err != nil {
		t.Fatal(err)
	}
	if q.Len() >= snap.Len() {
		t.Errorf("int8 snapshot not smaller: %d vs %d bytes", q.Len(), snap.Len())
	}
	qm, err := LoadModel(&q)
	if err != nil {
		t.Fatal(err)
	}
	if !qm.Quantized() {
		t.Error("reloaded int8 snapshot not quantized")
	}
}

// Every strict parser the facade exposes fails through the one ParseError
// type, so callers branch on it uniformly.
func TestParseErrorUnified(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"comm mode", func() error { _, err := ParseCommMode("bogus"); return err }()},
		{"collective schedule", func() error { _, err := ParseCollectiveSchedule("bogus"); return err }()},
		{"compression scheme", func() error { _, err := ParseCompressionScheme("bogus"); return err }()},
		{"compute precision", func() error { _, err := ParseComputePrecision("bogus"); return err }()},
		{"fail mode", func() error { _, err := ParseFailMode("bogus"); return err }()},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted %q", c.name, "bogus")
			continue
		}
		var pe *ParseError
		if !errors.As(c.err, &pe) {
			t.Errorf("%s: %T is not a ParseError", c.name, c.err)
			continue
		}
		if !strings.Contains(c.err.Error(), `"bogus"`) || !strings.Contains(c.err.Error(), "one of") {
			t.Errorf("%s: error %q lacks the unified format", c.name, c.err)
		}
	}
}

func TestHierFacade(t *testing.T) {
	// Composed two-level oracle: tree/tree = intra reduce + inter allreduce
	// + intra broadcast, assembled from the flat oracles.
	intraA, intraB := 6e-6, 1.0/12e9
	interA, interB := 0.7e-6, 0.2e-9
	got, err := AnalyticHierAllReduceTime("tree", "tree", 1<<20, 4, 8, intraA, intraB, interA, interB)
	if err != nil {
		t.Fatal(err)
	}
	intra := 2 * 3 * (intraA + (1<<20)*intraB) // reduce + bcast, log2(8) rounds each
	inter := 2 * 2 * (interA + (1<<20)*interB) // tree allreduce over 4 leaders
	if diff := got - (intra + inter); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("composed oracle %v, want %v", got, intra+inter)
	}
	if _, err := AnalyticHierAllReduceTime("chain", "tree", 1<<20, 4, 8, intraA, intraB, interA, interB); err == nil {
		t.Error("chain intra should have no closed form")
	}
	if _, err := AnalyticHierAllReduceTime("warp", "tree", 1, 1, 1, 0, 0, 0, 0); err == nil {
		t.Error("unknown schedule accepted")
	}

	// Hierarchical training through the facade: bit-identical to flat.
	train, test := SyntheticMNIST(1, 256, 64)
	cfg := Config{
		Def: TinyCNN(Shape{C: 1, H: 28, W: 28}, 10), Train: train, Test: test,
		Batch: 8, LR: 0.05, Iterations: 8, Seed: 1,
		Platform: DefaultGPUPlatform(true),
	}
	flatCfg := cfg
	flatCfg.Workers = 4
	flat, err := Train("sync-sgd", flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes, cfg.GPUsPerNode = 2, 2
	hier, err := Train("hier-sync-sgd", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hier.FinalLoss != flat.FinalLoss {
		t.Errorf("hier-sync-sgd loss %v differs from flat %v", hier.FinalLoss, flat.FinalLoss)
	}
	cfg.TauLocal, cfg.TauGlobal = 2, 4
	if _, err := Train("hier-sync-easgd", cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(Experiments()) != 23 {
		t.Errorf("want 23 experiments, got %d", len(Experiments()))
	}
	rep, err := RunExperiment("table2", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 {
		t.Error("table2 empty")
	}
	if _, err := RunExperiment("nope", Options{}); err == nil {
		t.Error("unknown experiment did not error")
	}
	eff, err := WeakScalingEfficiency("vgg19", 32)
	if err != nil || eff <= 0 || eff >= 1 {
		t.Errorf("vgg19 efficiency %v, %v", eff, err)
	}
}
