module scaledl

go 1.24
