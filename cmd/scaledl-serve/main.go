// Command scaledl-serve serves a trained model snapshot over HTTP with
// dynamic micro-batching: concurrent /v1/predict requests are coalesced
// into batched forwards through the packed GEMM engine (internal/serve).
//
// Usage:
//
//	scaledl-serve -model lenet.bin                        # serve a snapshot
//	scaledl-serve -model lenet.bin -int8                  # quantize, then serve
//	scaledl-serve -train-iters 60 -save demo.bin          # train a demo model, snapshot, exit
//	scaledl-serve -model demo.bin -loadtest -rate 2000    # open-loop load test
//	scaledl-serve -loadtest -assert-p99-ms 250 -assert-max-shed 0   # CI smoke
//
// Without -model the server trains a small demo TinyCNN on synthetic
// MNIST-shaped data in-process, so every mode works from a bare checkout.
// On SIGTERM/SIGINT the server drains: admission stops (healthz flips to
// 503), every admitted request is answered, then the process exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"scaledl/internal/data"
	"scaledl/internal/nn"
	"scaledl/internal/serve"
	"scaledl/internal/serve/loadgen"
	"scaledl/internal/tensor"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model snapshot to serve (empty = train a demo model in-process)")
		savePath  = flag.String("save", "", "write the (possibly quantized) model snapshot here and exit")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
		maxBatch  = flag.Int("max-batch", 32, "batch coalescing limit")
		maxDelay  = flag.Duration("max-delay", 2*time.Millisecond, "max wait for a batch to fill before it launches")
		queue     = flag.Int("queue-bound", 0, "admission queue bound; overflow is shed with 429 (0 = 4x max-batch)")
		deadline  = flag.Duration("deadline", 0, "default per-request deadline when X-Deadline-Ms is absent (0 = none)")
		int8Flag  = flag.Bool("int8", false, "int8 post-training quantization of dense/conv weights before serving")
		prec      = flag.String("precision", "", "GEMM compute storage precision: fp32 (default), bf16 or fp16 (fp32 accumulation)")
		iters     = flag.Int("train-iters", 40, "training iterations for the in-process demo model")

		loadtest  = flag.Bool("loadtest", false, "boot the server, generate load against it, print the latency report and exit")
		rate      = flag.Float64("rate", 0, "loadtest offered load in requests/second (0 = closed loop at -concurrency)")
		duration  = flag.Duration("duration", 2*time.Second, "loadtest duration")
		conc      = flag.Int("concurrency", 8, "loadtest workers (closed loop) or outstanding-request cap (open loop)")
		assertP99 = flag.Float64("assert-p99-ms", 0, "loadtest: exit nonzero unless p99 latency is below this many milliseconds (0 = off)")
		assertShd = flag.Float64("assert-max-shed", -1, "loadtest: exit nonzero if the shed rate exceeds this fraction (negative = off)")
	)
	flag.Parse()

	p, err := tensor.ParsePrecision(*prec)
	if err != nil {
		fatal(err)
	}
	tensor.SetComputePrecision(p)

	model, err := loadOrTrainModel(*modelPath, *iters)
	if err != nil {
		fatal(err)
	}
	if *int8Flag {
		n := model.QuantizeInt8()
		fmt.Fprintf(os.Stderr, "quantized %d layers to int8 (%d params)\n", n, model.ParamCount())
	}
	if *savePath != "" {
		if err := saveModel(model, *savePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved %s snapshot to %s\n", model.Def().Name, *savePath)
		return
	}

	s, err := serve.NewServer(model, serve.Config{
		Batch: serve.BatchConfig{
			MaxBatch:   *maxBatch,
			MaxDelay:   *maxDelay,
			QueueBound: *queue,
		},
		DefaultDeadline: *deadline,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	if *loadtest {
		res := runLoadTest(ln, s, loadgen.Options{
			Dim:         model.InputDim(),
			Classes:     model.Classes(),
			Duration:    *duration,
			Rate:        *rate,
			Concurrency: *conc,
			Deadline:    *deadline,
			Seed:        1,
		})
		printLoadResult(os.Stdout, res, s.Batcher().Stats(), *rate > 0)
		if err := checkAsserts(res, *assertP99, *assertShd); err != nil {
			fatal(err)
		}
		return
	}

	hs := &http.Server{Handler: s.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
		<-sig
		fmt.Fprintln(os.Stderr, "draining: admission stopped, finishing admitted requests")
		s.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	fmt.Fprintf(os.Stderr, "serving %s (%d params%s) on http://%s  max-batch=%d max-delay=%v\n",
		model.Def().Name, model.ParamCount(), quantSuffix(model), ln.Addr(), *maxBatch, *maxDelay)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	st := s.Batcher().Stats()
	fmt.Fprintf(os.Stderr, "served %d requests in %d batches (mean batch %.2f), shed %d, expired %d\n",
		st.Served, st.Batches, st.MeanBatch, st.Shed, st.Expired)
}

func quantSuffix(m *nn.Model) string {
	if m.Quantized() {
		return ", int8"
	}
	return ""
}

// loadOrTrainModel opens a snapshot, or trains the in-process demo model (a
// TinyCNN on synthetic MNIST-shaped data) when path is empty.
func loadOrTrainModel(path string, iters int) (*nn.Model, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return nn.LoadModel(f)
	}
	fmt.Fprintf(os.Stderr, "no -model: training a demo TinyCNN for %d iterations\n", iters)
	spec := data.Spec{Name: "mnist-syn", Channels: 1, Height: 28, Width: 28, Classes: 10}
	train, _ := data.Synthetic(data.Config{Spec: spec, Seed: 31, TrainN: 1024, TestN: 16, Noise: 0.8})
	train.Normalize()
	net := nn.TinyCNN(nn.Shape{C: 1, H: 28, W: 28}, 10).Build(1)
	s := data.NewSampler(train, 7)
	var batch *data.Batch
	for i := 0; i < iters; i++ {
		batch = s.Next(32, batch)
		net.ZeroGrad()
		net.LossAndGrad(batch.X, batch.Labels, 32)
		net.SGDStep(0.05)
	}
	return nn.NewModel(net), nil
}

func saveModel(m *nn.Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runLoadTest serves on ln in the background and drives the load generator
// through the real HTTP stack.
func runLoadTest(ln net.Listener, s *serve.Server, o loadgen.Options) loadgen.Result {
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2 * o.Concurrency}}
	return loadgen.Run(httpTarget(url, client), o)
}

// httpTarget adapts a running server into a loadgen.Target: statuses map
// back onto the batcher's sentinel errors so the recorder partitions
// outcomes identically to a direct-batcher run.
func httpTarget(url string, client *http.Client) loadgen.Target {
	return func(in, out []float32, deadline time.Time) error {
		body, err := json.Marshal(struct {
			Input []float32 `json:"input"`
		}{in})
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if !deadline.IsZero() {
			ms := time.Until(deadline).Milliseconds()
			if ms <= 0 {
				return serve.ErrDeadline
			}
			req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer func() {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		switch resp.StatusCode {
		case http.StatusOK:
			var pr struct {
				Logits []float32 `json:"logits"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				return err
			}
			copy(out, pr.Logits)
			return nil
		case http.StatusTooManyRequests:
			return serve.ErrShed
		case http.StatusGatewayTimeout:
			return serve.ErrDeadline
		case http.StatusServiceUnavailable:
			return serve.ErrDraining
		default:
			return fmt.Errorf("predict: status %d", resp.StatusCode)
		}
	}
}

func printLoadResult(w io.Writer, r loadgen.Result, st serve.Stats, open bool) {
	loop := "closed"
	if open {
		loop = "open"
	}
	fmt.Fprintf(w, "loadtest (%s loop): offered %.0f req/s, achieved %.0f req/s\n", loop, r.Offered, r.Achieved)
	fmt.Fprintf(w, "  outcomes: ok=%d shed=%d expired=%d errors=%d (shed rate %.1f%%)\n",
		r.OK, r.Shed, r.Expired, r.Errors, r.ShedRate()*100)
	fmt.Fprintf(w, "  latency: p50=%.2fms p90=%.2fms p99=%.2fms p99.9=%.2fms max=%.2fms\n",
		ms(r.P50), ms(r.P90), ms(r.P99), ms(r.P999), ms(r.Max))
	fmt.Fprintf(w, "  batching: %d batches, mean batch %.2f\n", st.Batches, st.MeanBatch)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// checkAsserts applies the CI smoke bounds to a loadtest result.
func checkAsserts(r loadgen.Result, p99Ms, maxShed float64) error {
	if r.OK == 0 {
		return errors.New("loadtest: no successful requests")
	}
	if p99Ms > 0 && ms(r.P99) >= p99Ms {
		return fmt.Errorf("loadtest: p99 %.2fms breaches the %.0fms bound", ms(r.P99), p99Ms)
	}
	if maxShed >= 0 && r.ShedRate() > maxShed {
		return fmt.Errorf("loadtest: shed rate %.3f exceeds the %.3f bound", r.ShedRate(), maxShed)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaledl-serve:", err)
	os.Exit(1)
}
