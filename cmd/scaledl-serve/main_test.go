package main

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaledl/internal/parse"
	"scaledl/internal/serve"
	"scaledl/internal/serve/loadgen"
	"scaledl/internal/tensor"
)

// The -precision flag is strict and its error names the allowed set in the
// unified ParseError format every facade parser shares.
func TestPrecisionFlagStrict(t *testing.T) {
	for _, in := range []string{"", "fp32", "bf16", "fp16"} {
		if _, err := tensor.ParsePrecision(in); err != nil {
			t.Errorf("ParsePrecision(%q): %v", in, err)
		}
	}
	_, err := tensor.ParsePrecision("int8")
	if err == nil {
		t.Fatal("ParsePrecision accepted int8")
	}
	var pe *parse.Error
	if !errors.As(err, &pe) {
		t.Fatalf("precision error %T is not a parse.Error", err)
	}
	for _, want := range []string{"fp32", "bf16", "fp16", `"int8"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

// Snapshot round trip through the files the -save flag writes: the demo
// model reloads and serves, and the int8 snapshot is smaller.
func TestSaveAndReloadSnapshot(t *testing.T) {
	m, err := loadOrTrainModel("", 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fp32Path := filepath.Join(dir, "m.bin")
	if err := saveModel(m, fp32Path); err != nil {
		t.Fatal(err)
	}
	m.QuantizeInt8()
	int8Path := filepath.Join(dir, "m8.bin")
	if err := saveModel(m, int8Path); err != nil {
		t.Fatal(err)
	}
	got, err := loadOrTrainModel(int8Path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Quantized() || got.InputDim() != m.InputDim() {
		t.Fatalf("reloaded model: quantized=%v dim=%d", got.Quantized(), got.InputDim())
	}
}

// httpTarget maps the server's status codes back onto the batcher's
// sentinel errors, so loadgen's outcome partition matches a direct run.
func TestHTTPTargetStatusMapping(t *testing.T) {
	var status int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
		if status == http.StatusOK {
			w.Write([]byte(`{"argmax":1,"logits":[0.5,2.5]}`))
		}
	}))
	defer ts.Close()
	target := httpTarget(ts.URL, ts.Client())
	in, out := make([]float32, 4), make([]float32, 2)

	status = http.StatusOK
	if err := target(in, out, time.Time{}); err != nil || out[1] != 2.5 {
		t.Errorf("200: err=%v out=%v", err, out)
	}
	for _, c := range []struct {
		code int
		want error
	}{
		{http.StatusTooManyRequests, serve.ErrShed},
		{http.StatusGatewayTimeout, serve.ErrDeadline},
		{http.StatusServiceUnavailable, serve.ErrDraining},
	} {
		status = c.code
		if err := target(in, out, time.Time{}); !errors.Is(err, c.want) {
			t.Errorf("status %d mapped to %v, want %v", c.code, err, c.want)
		}
	}
	// An already-expired deadline is settled client-side, no request sent.
	if err := target(in, out, time.Now().Add(-time.Second)); !errors.Is(err, serve.ErrDeadline) {
		t.Errorf("expired deadline got %v, want ErrDeadline", err)
	}
}

func TestCheckAsserts(t *testing.T) {
	r := loadgen.Result{OK: 90, Shed: 10, P99: 80 * time.Millisecond}
	if err := checkAsserts(r, 0, -1); err != nil {
		t.Errorf("no bounds: %v", err)
	}
	if err := checkAsserts(r, 100, 0.2); err != nil {
		t.Errorf("inside bounds: %v", err)
	}
	if err := checkAsserts(r, 50, -1); err == nil {
		t.Error("p99 breach passed")
	}
	if err := checkAsserts(r, 0, 0.05); err == nil {
		t.Error("shed breach passed")
	}
	if err := checkAsserts(loadgen.Result{}, 0, -1); err == nil {
		t.Error("zero successes passed")
	}
}
