// Command scaledl-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	scaledl-bench -list
//	scaledl-bench -exp table3
//	scaledl-bench -exp all -scale 0.5
//	scaledl-bench -exp table4 -csv out
//
// Each experiment prints its tables as aligned text; -csv additionally
// writes one CSV file per table into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scaledl/internal/harness"
	"scaledl/internal/par"
	"scaledl/internal/tensor"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (or \"all\")")
		list  = flag.Bool("list", false, "list available experiments")
		seed  = flag.Int64("seed", 1, "random seed")
		scale = flag.Float64("scale", 1.0, "budget scale factor (0.1 = quick smoke, 1 = default)")
		csv   = flag.String("csv", "", "directory to write per-table CSV files into")
		width = flag.Int("width", 0, "worker-pool width for real math (0 = GOMAXPROCS); results are deterministic per width")
	)
	flag.Parse()
	par.SetWidth(*width)

	// The kernel tier decides which GEMM micro-kernel every experiment's real
	// math runs through (and so its wall-clock); print it up front so bench
	// logs are attributable to the hardware they ran on.
	bl := tensor.KernelBlocking()
	fmt.Printf("scaledl-bench: GEMM kernel tier %s (%d×%d tile), pool width %d\n",
		tensor.KernelTier(), bl.MR, bl.NR, par.Width())

	if *list {
		fmt.Println("available experiments:")
		for _, e := range harness.List() {
			fmt.Printf("  %-8s  %-55s  [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "scaledl-bench: pass -exp <id> or -list (see -help)")
		os.Exit(2)
	}

	opts := harness.Options{Seed: *seed, Scale: *scale}
	var reports []*harness.Report
	if *exp == "all" {
		rs, err := harness.RunAll(opts)
		if err != nil {
			fatal(err)
		}
		reports = rs
	} else {
		e, err := harness.Get(*exp)
		if err != nil {
			fatal(err)
		}
		r, err := e.Run(opts)
		if err != nil {
			fatal(err)
		}
		reports = []*harness.Report{r}
	}

	for _, r := range reports {
		r.Format(os.Stdout)
		fmt.Println()
		if *csv != "" {
			if err := writeCSV(*csv, r); err != nil {
				fatal(err)
			}
		}
	}
}

func writeCSV(dir string, r *harness.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range r.Tables {
		name := fmt.Sprintf("%s_%d_%s.csv", r.ID, i, slug(t.Title))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, name))
	}
	return nil
}

func slug(s string) string {
	s = strings.ToLower(s)
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == ' ' || r == '-' || r == '/':
			sb.WriteByte('-')
		}
	}
	out := strings.Trim(sb.String(), "-")
	if len(out) > 40 {
		out = out[:40]
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaledl-bench:", err)
	os.Exit(1)
}
