package main

import (
	"strings"
	"testing"

	"scaledl/internal/core"
)

// The fault-spec parsers must reject malformed input with an error instead
// of guessing: a float fail step used to be silently truncated to int, and
// a zero straggler factor silently disabled the fault.

// The -comm-mode flag is strict: exactly the lower-case mode names (or empty
// for the dense default) are accepted; anything else errors with the valid
// names instead of silently training in dense mode.
func TestCommModeFlagStrict(t *testing.T) {
	good := map[string]core.CommMode{
		"":       core.CommDense,
		"dense":  core.CommDense,
		"sfb":    core.CommSFB,
		"hybrid": core.CommHybrid,
	}
	for in, want := range good {
		got, err := core.ParseCommMode(in)
		if err != nil || got != want {
			t.Errorf("ParseCommMode(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"Dense", "SFB", "Hybrid", "densee", "factors", "x"} {
		if _, err := core.ParseCommMode(in); err == nil {
			t.Errorf("ParseCommMode(%q) accepted", in)
		} else if !strings.Contains(err.Error(), "dense") {
			t.Errorf("ParseCommMode(%q) error %q does not name the valid modes", in, err)
		}
	}
}

// -verbose-comm prints one cost-model row per parameter layer plus the
// factor-layer summary.
func TestPrintCommSelector(t *testing.T) {
	sel := &core.HybridSelector{
		Mode:    core.CommHybrid,
		Workers: 4,
		Choices: []core.LayerCommChoice{
			{Seg: 0, Layer: 0, Kind: "Conv2D", Elems: 520, DenseBytes: 12480, DenseTime: 1e-5},
			{Seg: 1, Layer: 2, Kind: "Dense", Elems: 400500, B: 8, F: 500, D: 800,
				SFBOK: true, UseSFB: true, DenseBytes: 9612000, SFBBytes: 499200,
				DenseTime: 3e-4, SFBTime: 5e-5, ReconTime: 1e-5},
		},
	}
	var sb strings.Builder
	printCommSelector(&sb, sel)
	out := sb.String()
	for _, want := range []string{
		"hybrid mode, 4 workers",
		"dense (no factor form)",
		"Dense",
		"sfb",
		"1 of 2 parameter layers ship sufficient factors",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("selector output missing %q:\n%s", want, out)
		}
	}
}

func TestParseStraggler(t *testing.T) {
	good := []struct {
		in     string
		rank   int
		factor float64
	}{
		{"4", 1, 4}, // bare factor stragglers rank 1
		{"1:4", 1, 4},
		{"2:1.5", 2, 1.5},
		{"0:10", 0, 10},
	}
	for _, c := range good {
		rank, f, err := parseStraggler(c.in)
		if err != nil {
			t.Errorf("parseStraggler(%q): %v", c.in, err)
			continue
		}
		if rank != c.rank || f != c.factor {
			t.Errorf("parseStraggler(%q) = (%d, %v), want (%d, %v)", c.in, rank, f, c.rank, c.factor)
		}
	}
	for _, in := range []string{"", "x", "1:", "1:x", "-1:4", "1:0", "1:-4", "0", "1:2:3", "1.5:4"} {
		if _, _, err := parseStraggler(in); err == nil {
			t.Errorf("parseStraggler(%q) accepted", in)
		}
	}
}

func TestParseFailAt(t *testing.T) {
	good := []struct {
		in         string
		rank, step int
	}{
		{"50", 0, 50}, // bare step fails rank 0
		{"2:50", 2, 50},
		{"0:1", 0, 1},
	}
	for _, c := range good {
		rank, step, err := parseFailAt(c.in)
		if err != nil {
			t.Errorf("parseFailAt(%q): %v", c.in, err)
			continue
		}
		if rank != c.rank || step != c.step {
			t.Errorf("parseFailAt(%q) = (%d, %d), want (%d, %d)", c.in, rank, step, c.rank, c.step)
		}
	}
	// "2.5" and "2:50.0" were previously truncated by int(ParseFloat(...)).
	for _, in := range []string{"", "x", "2.5", "2:50.0", "2:", "2:x", "-1:50", "2:-5", "1:2:3"} {
		if _, _, err := parseFailAt(in); err == nil {
			t.Errorf("parseFailAt(%q) accepted", in)
		}
	}
}

func TestParseBadLinks(t *testing.T) {
	bls, err := parseBadLinks("1:0:0:0.3,2:3:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(bls) != 2 {
		t.Fatalf("got %d links, want 2", len(bls))
	}
	if bls[0].From != 1 || bls[0].To != 0 || bls[0].Loss != 0 || bls[0].Corrupt != 0.3 {
		t.Errorf("link 0 = %+v", bls[0])
	}
	if bls[1].From != 2 || bls[1].To != 3 || bls[1].Loss != 0.1 || bls[1].Corrupt != 0 {
		t.Errorf("link 1 = %+v", bls[1])
	}
	for _, in := range []string{"", "1:0", "1:0:x", "1:0:0.1:y", "a:0:0.1", "1:b:0.1", "-1:0:0.1", "1:0:0.1:0.2:0.3", "1:0:0.1,,"} {
		if _, err := parseBadLinks(in); err == nil {
			t.Errorf("parseBadLinks(%q) accepted", in)
		}
	}
}
