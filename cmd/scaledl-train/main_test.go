package main

import "testing"

// The fault-spec parsers must reject malformed input with an error instead
// of guessing: a float fail step used to be silently truncated to int, and
// a zero straggler factor silently disabled the fault.

func TestParseStraggler(t *testing.T) {
	good := []struct {
		in     string
		rank   int
		factor float64
	}{
		{"4", 1, 4}, // bare factor stragglers rank 1
		{"1:4", 1, 4},
		{"2:1.5", 2, 1.5},
		{"0:10", 0, 10},
	}
	for _, c := range good {
		rank, f, err := parseStraggler(c.in)
		if err != nil {
			t.Errorf("parseStraggler(%q): %v", c.in, err)
			continue
		}
		if rank != c.rank || f != c.factor {
			t.Errorf("parseStraggler(%q) = (%d, %v), want (%d, %v)", c.in, rank, f, c.rank, c.factor)
		}
	}
	for _, in := range []string{"", "x", "1:", "1:x", "-1:4", "1:0", "1:-4", "0", "1:2:3", "1.5:4"} {
		if _, _, err := parseStraggler(in); err == nil {
			t.Errorf("parseStraggler(%q) accepted", in)
		}
	}
}

func TestParseFailAt(t *testing.T) {
	good := []struct {
		in         string
		rank, step int
	}{
		{"50", 0, 50}, // bare step fails rank 0
		{"2:50", 2, 50},
		{"0:1", 0, 1},
	}
	for _, c := range good {
		rank, step, err := parseFailAt(c.in)
		if err != nil {
			t.Errorf("parseFailAt(%q): %v", c.in, err)
			continue
		}
		if rank != c.rank || step != c.step {
			t.Errorf("parseFailAt(%q) = (%d, %d), want (%d, %d)", c.in, rank, step, c.rank, c.step)
		}
	}
	// "2.5" and "2:50.0" were previously truncated by int(ParseFloat(...)).
	for _, in := range []string{"", "x", "2.5", "2:50.0", "2:", "2:x", "-1:50", "2:-5", "1:2:3"} {
		if _, _, err := parseFailAt(in); err == nil {
			t.Errorf("parseFailAt(%q) accepted", in)
		}
	}
}

func TestParseBadLinks(t *testing.T) {
	bls, err := parseBadLinks("1:0:0:0.3,2:3:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(bls) != 2 {
		t.Fatalf("got %d links, want 2", len(bls))
	}
	if bls[0].From != 1 || bls[0].To != 0 || bls[0].Loss != 0 || bls[0].Corrupt != 0.3 {
		t.Errorf("link 0 = %+v", bls[0])
	}
	if bls[1].From != 2 || bls[1].To != 3 || bls[1].Loss != 0.1 || bls[1].Corrupt != 0 {
		t.Errorf("link 1 = %+v", bls[1])
	}
	for _, in := range []string{"", "1:0", "1:0:x", "1:0:0.1:y", "a:0:0.1", "1:b:0.1", "-1:0:0.1", "1:0:0.1:0.2:0.3", "1:0:0.1,,"} {
		if _, err := parseBadLinks(in); err == nil {
			t.Errorf("parseBadLinks(%q) accepted", in)
		}
	}
}
