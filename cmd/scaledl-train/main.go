// Command scaledl-train runs one distributed training method on a synthetic
// dataset under the simulated platform and prints the accuracy-versus-time
// trajectory.
//
// Usage:
//
//	scaledl-train -method sync-easgd3 -workers 4 -batch 32 -iters 100
//	scaledl-train -method hogwild-easgd -dataset cifar -iters 200
//	scaledl-train -method sync-sgd -overlap -bucket 8192 -schedule ring
//	scaledl-train -method sync-sgd -comm-mode hybrid -verbose-comm
//	scaledl-train -method hier-sync-sgd -nodes 4 -gpus-per-node 2 -hier-schedule rhd
//	scaledl-train -method hier-sync-easgd -nodes 2 -gpus-per-node 4 -tau-local 2 -tau-global 8
//	scaledl-train -method sync-easgd3 -straggler 1:4 -fail-at 50 -checkpoint-every 10
//	scaledl-train -method sync-sgd -loss 0.05 -bad-link 1:0:0:0.3 -fail-at 3:50 -fail-mode continue
//	scaledl-train -method sync-sgd -partial-k 3 -straggler 1:40
//	scaledl-train -list
//
// The fault flags come in two tiers. The timing-only tier — -straggler
// slows one rank's compute, -fail-at crashes a rank mid-run (it reloads the
// latest checkpoint and replays), -checkpoint-every sets the periodic
// checkpoint interval — never touches the math: only the simulated clock
// and the breakdown (including the recovery category) move. The semantic
// tier — -loss/-corrupt message rates, -bad-link for one bad cable,
// -fail-mode continue for a fail-stop with no recovery, -partial-k for
// deadline-based partial aggregation — can change what is computed, but
// deterministically under -fault-seed (0 = the run seed).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/data"
	"scaledl/internal/nn"
	"scaledl/internal/quant"
)

func main() {
	var (
		method   = flag.String("method", "sync-easgd3", "training method (see -list)")
		list     = flag.Bool("list", false, "list available methods")
		dataset  = flag.String("dataset", "mnist", "synthetic dataset: mnist or cifar")
		workers  = flag.Int("workers", 4, "number of simulated workers (P)")
		batch    = flag.Int("batch", 32, "per-worker batch size (b)")
		iters    = flag.Int("iters", 100, "iteration budget")
		lr       = flag.Float64("lr", 0.05, "learning rate η")
		momentum = flag.Float64("momentum", 0.9, "momentum µ (momentum methods)")
		rho      = flag.Float64("rho", 0, "elastic force ρ (0 = η·ρ = 0.9/P default)")
		seed     = flag.Int64("seed", 1, "random seed")
		trainN   = flag.Int("train", 2048, "synthetic training samples")
		every    = flag.Int("eval-every", 10, "accuracy probe interval")
		packed   = flag.Bool("packed", true, "use the §5.2 packed communication layout")
		schedule = flag.String("schedule", "tree", "allreduce schedule for sync-sgd (tree|ring|rhd|chain|linear)")
		compress = flag.String("compress", "", "wire compression: fp32 (default), 1-bit or uint8")
		prec     = flag.String("precision", "", "GEMM compute storage precision: fp32 (default), bf16 or fp16 (fp32 accumulation)")
		overlap  = flag.Bool("overlap", false, "stream gradients: per-bucket communication launches as backward emits layers")
		commMode = flag.String("comm-mode", "", "gradient transport for the allreduce methods: dense (default), sfb (sufficient-factor broadcasting) or hybrid (per-layer cost-model winner)")
		verbComm = flag.Bool("verbose-comm", false, "print the comm selector's per-layer transport decisions (dense vs sfb cost-model verdicts) before running")
		bucket   = flag.Int64("bucket", 0, "gradient bucket size in bytes for the streaming pipeline (0 = 1 MiB default)")
		nodes    = flag.Int("nodes", 0, "machine count for the hierarchical methods (hier-sync-sgd, hier-sync-easgd)")
		gpusPer  = flag.Int("gpus-per-node", 0, "GPUs per machine for the hierarchical methods (workers = nodes x gpus-per-node)")
		hierSch  = flag.String("hier-schedule", "tree", "inter-node (fabric) schedule for the hierarchical methods (tree|ring|rhd|chain|linear)")
		tauLocal = flag.Int("tau-local", 0, "hier-sync-easgd: node-group sync period in steps (0 = 1)")
		tauGlob  = flag.Int("tau-global", 0, "hier-sync-easgd: global center sync period in steps (0 = 4x tau-local)")
		strag    = flag.String("straggler", "", "straggler injection: factor or rank:factor (e.g. 4 or 1:4) — that rank computes factor-times slower all run")
		failAt   = flag.String("fail-at", "", "fail-stop injection: step or rank:step (e.g. 50 or 2:50) — the rank crashes at that step, reloads the latest checkpoint and replays")
		ckpt     = flag.Int("checkpoint-every", 0, "periodic checkpoint interval in steps (0 = none; a failure then replays from step 1)")
		failMode = flag.String("fail-mode", "", "what -fail-at means: recover (default; reload+replay, timing-only) or continue (the rank dies for good, survivors finish with P-1)")
		loss     = flag.Float64("loss", 0, "per-attempt probability a message vanishes on the wire (guarded delivery retries; math unchanged)")
		corrupt  = flag.Float64("corrupt", 0, "per-attempt probability a message arrives garbled (checksum detects, resend; math unchanged)")
		badLinks = flag.String("bad-link", "", "extra per-link rates: from:to:loss[:corrupt], comma-separated (e.g. 1:0:0:0.3 for a corrupting cable into rank 0)")
		fseed    = flag.Int64("fault-seed", 0, "seed of the deterministic fault plan (0 = the run seed)")
		partialK = flag.Int("partial-k", 0, "sync-sgd partial aggregation: proceed once K live gradients arrived and the deadline passed (0 = off)")
		partialD = flag.Float64("partial-deadline", 0, "partial-aggregation window as a multiple of one gradient's wire time (0 = 3)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available methods:")
		for _, m := range core.MethodNames() {
			fmt.Println("  " + m)
		}
		return
	}

	var (
		spec  data.Spec
		shape nn.Shape
		noise float64
	)
	switch *dataset {
	case "mnist":
		spec = data.Spec{Name: "mnist-syn", Channels: 1, Height: 28, Width: 28, Classes: 10}
		noise = 0.8
	case "cifar":
		spec = data.Spec{Name: "cifar-syn", Channels: 3, Height: 32, Width: 32, Classes: 10}
		noise = 1.2
	default:
		fatal(fmt.Errorf("unknown dataset %q (mnist or cifar)", *dataset))
	}
	shape = nn.Shape{C: spec.Channels, H: spec.Height, W: spec.Width}

	train, test := data.Synthetic(data.Config{
		Spec: spec, Seed: *seed * 31, TrainN: *trainN, TestN: 512, Noise: noise,
	})
	train.Normalize()
	test.Normalize()

	run, ok := core.Methods[*method]
	if !ok {
		fatal(fmt.Errorf("unknown method %q (use -list)", *method))
	}
	sched, err := comm.ParseSchedule(*schedule)
	if err != nil {
		fatal(err)
	}
	hierSched, err := comm.ParseSchedule(*hierSch)
	if err != nil {
		fatal(err)
	}
	scheme, err := quant.ParseScheme(*compress)
	if err != nil {
		fatal(err)
	}
	cmode, err := core.ParseCommMode(*commMode)
	if err != nil {
		fatal(err)
	}
	if *nodes > 0 && *gpusPer > 0 {
		// The hierarchical cluster fixes the worker count.
		*workers = *nodes * *gpusPer
	}
	var faults core.FaultPlan
	if *strag != "" {
		// A bare factor stragglers rank 1 (rank 0 coordinates in most
		// methods, so slowing it tells a different story).
		rank, factor, err := parseStraggler(*strag)
		if err != nil {
			fatal(fmt.Errorf("-straggler: %w", err))
		}
		faults.StragglerFactor = factor
		faults.StragglerRanks = []int{rank}
	}
	if *failAt != "" {
		rank, step, err := parseFailAt(*failAt)
		if err != nil {
			fatal(fmt.Errorf("-fail-at: %w", err))
		}
		faults.FailRank = rank
		faults.FailAtStep = step
	}
	if *badLinks != "" {
		bls, err := parseBadLinks(*badLinks)
		if err != nil {
			fatal(fmt.Errorf("-bad-link: %w", err))
		}
		faults.BadLinks = bls
	}
	faults.CheckpointEvery = *ckpt
	faults.FailMode = *failMode
	faults.LossRate = *loss
	faults.CorruptRate = *corrupt
	faults.FaultSeed = *fseed
	faults.PartialK = *partialK
	faults.PartialDeadline = *partialD
	cfg := core.Config{
		Def:          nn.TinyCNN(shape, spec.Classes),
		Train:        train,
		Test:         test,
		Workers:      *workers,
		Batch:        *batch,
		LR:           float32(*lr),
		Momentum:     float32(*momentum),
		Rho:          float32(*rho),
		Iterations:   *iters,
		Seed:         *seed,
		Platform:     core.DefaultGPUPlatform(*packed),
		EvalEvery:    *every,
		Schedule:     sched,
		Compression:  scheme,
		ComputePrec:  *prec,
		CommMode:     cmode,
		Overlap:      *overlap,
		BucketBytes:  *bucket,
		Nodes:        *nodes,
		GPUsPerNode:  *gpusPer,
		HierSchedule: hierSched,
		TauLocal:     *tauLocal,
		TauGlobal:    *tauGlob,
		Faults:       faults,
	}
	if *verbComm {
		sel, err := core.SelectCommModes(cfg)
		if err != nil {
			fatal(err)
		}
		printCommSelector(os.Stdout, sel)
	}
	res, err := run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("method=%s workers=%d batch=%d lr=%g iters=%d\n",
		res.Method, res.Workers, *batch, *lr, res.Iterations)
	fmt.Printf("%-8s %-12s %-10s %-8s\n", "iter", "sim-time(s)", "loss", "test-acc")
	for _, pt := range res.Curve {
		fmt.Printf("%-8d %-12.5f %-10.4f %-8.3f\n", pt.Iter, pt.SimTime, pt.Loss, pt.TestAcc)
	}
	fmt.Printf("\nfinal: simulated %.5fs, accuracy %.3f, %d samples\n", res.SimTime, res.FinalAcc, res.Samples)
	fmt.Printf("breakdown: ")
	for _, c := range core.Categories() {
		fmt.Printf("%s %.0f%%  ", c, res.Breakdown.Share(c)*100)
	}
	fmt.Printf("(comm ratio %.0f%%, param traffic %.2f MB, hidden comm %.5fs)\n",
		res.Breakdown.CommRatio()*100, float64(res.Breakdown.ParamTraffic())/(1<<20),
		res.Breakdown.HiddenComm)
}

// printCommSelector renders the hybrid comm selector's per-layer verdicts:
// one cost-model row per parameter layer (dense vs sufficient-factor wire
// bytes and analytic times) and a summary of how many layers ship factors.
func printCommSelector(w io.Writer, sel *core.HybridSelector) {
	fmt.Fprintf(w, "comm selector (%s mode, %d workers):\n", sel.Mode, sel.Workers)
	for _, c := range sel.Choices {
		fmt.Fprintf(w, "  %s\n", c)
	}
	fmt.Fprintf(w, "  %d of %d parameter layers ship sufficient factors\n", sel.NumSFB(), len(sel.Choices))
}

// splitRank peels an optional leading "rank:" off a fault spec; a bare
// value uses defRank. At most one colon is meaningful here — extra fields
// surface as a bad-value error downstream.
func splitRank(s string, defRank int) (int, string, error) {
	if i := strings.Index(s, ":"); i >= 0 {
		r, err := strconv.Atoi(s[:i])
		if err != nil || r < 0 {
			return 0, "", fmt.Errorf("bad rank %q (want rank:value)", s[:i])
		}
		return r, s[i+1:], nil
	}
	return defRank, s, nil
}

// parseStraggler parses "factor" or "rank:factor". The factor must be a
// positive number: zero or negative compute scaling is a typo, not a
// scenario.
func parseStraggler(s string) (int, float64, error) {
	rank, rest, err := splitRank(s, 1)
	if err != nil {
		return 0, 0, err
	}
	f, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad factor %q (want factor or rank:factor)", rest)
	}
	if f <= 0 {
		return 0, 0, fmt.Errorf("factor must be positive, got %v", f)
	}
	return rank, f, nil
}

// parseFailAt parses "step" or "rank:step". The step must be a whole
// number — "2.5" is rejected rather than silently truncated.
func parseFailAt(s string) (int, int, error) {
	rank, rest, err := splitRank(s, 0)
	if err != nil {
		return 0, 0, err
	}
	step, err := strconv.Atoi(rest)
	if err != nil {
		return 0, 0, fmt.Errorf("bad step %q (want a whole step number or rank:step)", rest)
	}
	if step < 0 {
		return 0, 0, fmt.Errorf("step must be >= 0, got %d", step)
	}
	return rank, step, nil
}

// parseBadLinks parses a comma-separated list of "from:to:loss[:corrupt]"
// directed-link specs.
func parseBadLinks(s string) ([]core.BadLink, error) {
	var out []core.BadLink
	for _, spec := range strings.Split(s, ",") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 && len(parts) != 4 {
			return nil, fmt.Errorf("bad spec %q (want from:to:loss[:corrupt])", spec)
		}
		from, err1 := strconv.Atoi(parts[0])
		to, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || from < 0 || to < 0 {
			return nil, fmt.Errorf("bad link endpoints in %q", spec)
		}
		lr, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad loss rate in %q", spec)
		}
		bl := core.BadLink{From: from, To: to, Loss: lr}
		if len(parts) == 4 {
			if bl.Corrupt, err = strconv.ParseFloat(parts[3], 64); err != nil {
				return nil, fmt.Errorf("bad corrupt rate in %q", spec)
			}
		}
		out = append(out, bl)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaledl-train:", err)
	os.Exit(1)
}
