// Command scaledl-train runs one distributed training method on a synthetic
// dataset under the simulated platform and prints the accuracy-versus-time
// trajectory.
//
// Usage:
//
//	scaledl-train -method sync-easgd3 -workers 4 -batch 32 -iters 100
//	scaledl-train -method hogwild-easgd -dataset cifar -iters 200
//	scaledl-train -method sync-sgd -overlap -bucket 8192 -schedule ring
//	scaledl-train -method hier-sync-sgd -nodes 4 -gpus-per-node 2 -hier-schedule rhd
//	scaledl-train -method hier-sync-easgd -nodes 2 -gpus-per-node 4 -tau-local 2 -tau-global 8
//	scaledl-train -method sync-easgd3 -straggler 1:4 -fail-at 50 -checkpoint-every 10
//	scaledl-train -list
//
// The fault flags inject timing-only failures: -straggler slows one rank's
// compute, -fail-at crashes a rank mid-run (it reloads the latest
// checkpoint and replays), -checkpoint-every sets the periodic checkpoint
// interval. The math is unchanged — only the simulated clock and the
// breakdown (including the recovery category) move.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/data"
	"scaledl/internal/nn"
	"scaledl/internal/quant"
)

func main() {
	var (
		method   = flag.String("method", "sync-easgd3", "training method (see -list)")
		list     = flag.Bool("list", false, "list available methods")
		dataset  = flag.String("dataset", "mnist", "synthetic dataset: mnist or cifar")
		workers  = flag.Int("workers", 4, "number of simulated workers (P)")
		batch    = flag.Int("batch", 32, "per-worker batch size (b)")
		iters    = flag.Int("iters", 100, "iteration budget")
		lr       = flag.Float64("lr", 0.05, "learning rate η")
		momentum = flag.Float64("momentum", 0.9, "momentum µ (momentum methods)")
		rho      = flag.Float64("rho", 0, "elastic force ρ (0 = η·ρ = 0.9/P default)")
		seed     = flag.Int64("seed", 1, "random seed")
		trainN   = flag.Int("train", 2048, "synthetic training samples")
		every    = flag.Int("eval-every", 10, "accuracy probe interval")
		packed   = flag.Bool("packed", true, "use the §5.2 packed communication layout")
		schedule = flag.String("schedule", "tree", "allreduce schedule for sync-sgd (tree|ring|rhd|chain|linear)")
		compress = flag.String("compress", "", "wire compression: fp32 (default), 1-bit or uint8")
		overlap  = flag.Bool("overlap", false, "stream gradients: per-bucket communication launches as backward emits layers")
		bucket   = flag.Int64("bucket", 0, "gradient bucket size in bytes for the streaming pipeline (0 = 1 MiB default)")
		nodes    = flag.Int("nodes", 0, "machine count for the hierarchical methods (hier-sync-sgd, hier-sync-easgd)")
		gpusPer  = flag.Int("gpus-per-node", 0, "GPUs per machine for the hierarchical methods (workers = nodes x gpus-per-node)")
		hierSch  = flag.String("hier-schedule", "tree", "inter-node (fabric) schedule for the hierarchical methods (tree|ring|rhd|chain|linear)")
		tauLocal = flag.Int("tau-local", 0, "hier-sync-easgd: node-group sync period in steps (0 = 1)")
		tauGlob  = flag.Int("tau-global", 0, "hier-sync-easgd: global center sync period in steps (0 = 4x tau-local)")
		strag    = flag.String("straggler", "", "straggler injection: factor or rank:factor (e.g. 4 or 1:4) — that rank computes factor-times slower all run")
		failAt   = flag.String("fail-at", "", "fail-stop injection: step or rank:step (e.g. 50 or 2:50) — the rank crashes at that step, reloads the latest checkpoint and replays")
		ckpt     = flag.Int("checkpoint-every", 0, "periodic checkpoint interval in steps (0 = none; a failure then replays from step 1)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available methods:")
		for _, m := range core.MethodNames() {
			fmt.Println("  " + m)
		}
		return
	}

	var (
		spec  data.Spec
		shape nn.Shape
		noise float64
	)
	switch *dataset {
	case "mnist":
		spec = data.Spec{Name: "mnist-syn", Channels: 1, Height: 28, Width: 28, Classes: 10}
		noise = 0.8
	case "cifar":
		spec = data.Spec{Name: "cifar-syn", Channels: 3, Height: 32, Width: 32, Classes: 10}
		noise = 1.2
	default:
		fatal(fmt.Errorf("unknown dataset %q (mnist or cifar)", *dataset))
	}
	shape = nn.Shape{C: spec.Channels, H: spec.Height, W: spec.Width}

	train, test := data.Synthetic(data.Config{
		Spec: spec, Seed: *seed * 31, TrainN: *trainN, TestN: 512, Noise: noise,
	})
	train.Normalize()
	test.Normalize()

	run, ok := core.Methods[*method]
	if !ok {
		fatal(fmt.Errorf("unknown method %q (use -list)", *method))
	}
	sched, err := comm.ParseSchedule(*schedule)
	if err != nil {
		fatal(err)
	}
	hierSched, err := comm.ParseSchedule(*hierSch)
	if err != nil {
		fatal(err)
	}
	scheme, err := quant.ParseScheme(*compress)
	if err != nil {
		fatal(err)
	}
	if *nodes > 0 && *gpusPer > 0 {
		// The hierarchical cluster fixes the worker count.
		*workers = *nodes * *gpusPer
	}
	var faults core.FaultPlan
	if *strag != "" {
		// A bare factor stragglers rank 1 (rank 0 coordinates in most
		// methods, so slowing it tells a different story).
		rank, factor, err := parseRankValue(*strag, 1)
		if err != nil {
			fatal(fmt.Errorf("-straggler: %w", err))
		}
		faults.StragglerFactor = factor
		faults.StragglerRanks = []int{rank}
	}
	if *failAt != "" {
		rank, step, err := parseRankValue(*failAt, 0)
		if err != nil {
			fatal(fmt.Errorf("-fail-at: %w", err))
		}
		faults.FailRank = rank
		faults.FailAtStep = int(step)
	}
	faults.CheckpointEvery = *ckpt
	cfg := core.Config{
		Def:          nn.TinyCNN(shape, spec.Classes),
		Train:        train,
		Test:         test,
		Workers:      *workers,
		Batch:        *batch,
		LR:           float32(*lr),
		Momentum:     float32(*momentum),
		Rho:          float32(*rho),
		Iterations:   *iters,
		Seed:         *seed,
		Platform:     core.DefaultGPUPlatform(*packed),
		EvalEvery:    *every,
		Schedule:     sched,
		Compression:  scheme,
		Overlap:      *overlap,
		BucketBytes:  *bucket,
		Nodes:        *nodes,
		GPUsPerNode:  *gpusPer,
		HierSchedule: hierSched,
		TauLocal:     *tauLocal,
		TauGlobal:    *tauGlob,
		Faults:       faults,
	}
	res, err := run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("method=%s workers=%d batch=%d lr=%g iters=%d\n",
		res.Method, res.Workers, *batch, *lr, res.Iterations)
	fmt.Printf("%-8s %-12s %-10s %-8s\n", "iter", "sim-time(s)", "loss", "test-acc")
	for _, pt := range res.Curve {
		fmt.Printf("%-8d %-12.5f %-10.4f %-8.3f\n", pt.Iter, pt.SimTime, pt.Loss, pt.TestAcc)
	}
	fmt.Printf("\nfinal: simulated %.5fs, accuracy %.3f, %d samples\n", res.SimTime, res.FinalAcc, res.Samples)
	fmt.Printf("breakdown: ")
	for _, c := range core.Categories() {
		fmt.Printf("%s %.0f%%  ", c, res.Breakdown.Share(c)*100)
	}
	fmt.Printf("(comm ratio %.0f%%, param traffic %.2f MB, hidden comm %.5fs)\n",
		res.Breakdown.CommRatio()*100, float64(res.Breakdown.ParamTraffic())/(1<<20),
		res.Breakdown.HiddenComm)
}

// parseRankValue splits "rank:v" into its parts; a bare "v" uses defRank.
func parseRankValue(s string, defRank int) (int, float64, error) {
	rank := defRank
	if i := strings.Index(s, ":"); i >= 0 {
		r, err := strconv.Atoi(s[:i])
		if err != nil || r < 0 {
			return 0, 0, fmt.Errorf("bad rank %q (want rank:value)", s[:i])
		}
		rank, s = r, s[i+1:]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad value %q", s)
	}
	return rank, v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaledl-train:", err)
	os.Exit(1)
}
