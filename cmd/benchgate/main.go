// Command benchgate compares fresh `go test -bench` output against the
// repository's checked-in benchmark baselines (BENCH_gemm.json,
// BENCH_comm.json, BENCH_overlap.json) and fails on regressions, so CI
// catches performance drift instead of silently uploading artifacts.
//
// Two metric families are gated:
//
//   - sim_ms — the *simulated* completion time a collective benchmark
//     reports. It is a pure function of the cost models and schedules
//     (deterministic across machines), so any drift beyond the tolerance is
//     a real behavioral change, not runner noise.
//   - GFLOPS — the packed GEMM engine's throughput. Host-dependent, gated
//     with the same tolerance to catch order-of-magnitude regressions (a
//     dropped SIMD path, an accidental copy); raise -tol on noisy runners.
//     Baselines are keyed by kernel tier (gflops_by_tier): the gate compares
//     against the tier the host actually dispatches to (-tier overrides),
//     reports MISSING when that tier has no recorded baseline, and -update
//     records the current tier's key without touching the others.
//
// Raw ns/op is reported but never gated: it measures the CI container.
//
// Usage:
//
//	go test -run '^$' -bench ... ./... | tee bench.txt
//	benchgate -bench bench.txt            # gate against ./BENCH_*.json
//	benchgate -bench bench.txt -update    # rewrite baselines from fresh results
//
// With GITHUB_STEP_SUMMARY set, a markdown report is appended for the job
// summary. Exit status 1 on any FAIL row.
package main

import (
	"flag"
	"fmt"
	"os"

	"scaledl/internal/tensor"
)

func main() {
	var (
		benchPath = flag.String("bench", "bench.txt", "go test -bench output to gate")
		dir       = flag.String("dir", ".", "directory holding the BENCH_*.json baselines")
		tol       = flag.Float64("tol", 0.15, "allowed fractional regression before failing")
		update    = flag.Bool("update", false, "rewrite the baselines' gated metrics from the fresh results")
		tier      = flag.String("tier", tensor.KernelTier(),
			"kernel tier key for the BENCH_gemm.json GFLOPS baselines (default: the tier this host dispatches to, honoring GODEBUG cpu.* downgrades)")
	)
	flag.Parse()

	fmt.Printf("benchgate: gating GFLOPS against kernel tier %q\n", *tier)
	results, err := parseBenchFile(*benchPath)
	if err != nil {
		fatal(err)
	}
	rows, err := gate(*dir, *tier, results, *tol, *update)
	if err != nil {
		fatal(err)
	}
	printTable(os.Stdout, rows)
	if summary := os.Getenv("GITHUB_STEP_SUMMARY"); summary != "" && !*update {
		f, err := os.OpenFile(summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			writeMarkdown(f, rows, *tol, *tier)
			f.Close()
		}
	}
	failed := 0
	for _, r := range rows {
		if r.Status == statusFail || r.Status == statusMissing {
			failed++
		}
	}
	if *update {
		fmt.Println("baselines updated")
		return
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed beyond %.0f%%\n", failed, *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all gated benchmarks within %.0f%% of baseline\n", *tol*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
