package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeTestBaselines populates dir with miniature copies of the three
// checked-in baseline files.
func writeTestBaselines(t *testing.T, dir string) {
	t.Helper()
	files := map[string]string{
		"BENCH_comm.json": `{
  "description": "test",
  "benchmarks": {
    "BenchmarkAllReduceTree": { "ns_per_op": 50000000, "sim_ms": 5.0 },
    "BenchmarkAllReduceHier": { "ns_per_op": 300000,   "sim_ms": 3.4 }
  }
}`,
		"BENCH_overlap.json": `{
  "description": "test",
  "benchmarks": {
    "BenchmarkAllReduceBucketed4": { "ns_per_op": 33000000, "sim_ms": 1.25 }
  }
}`,
		"BENCH_gemm.json": `{
  "description": "test",
  "benchmarks": [
    { "name": "GEMM/20x500x576", "ns_op": 748799, "gflops_by_tier": { "avx512": 15.0 }, "allocs_op": 0 },
    { "name": "MatVec", "ns_op": 142653, "allocs_op": 0 },
    { "name": "Conv2DForward (LeNet conv2, batch 16)", "ns_op": 3219204 }
  ]
}`,
		"BENCH_sim.json": `{
  "description": "test",
  "benchmarks": {
    "BenchmarkSimThroughput":        { "ns_per_op": 250, "events_per_sec": 8000000 },
    "BenchmarkSimSteadyStateAllocs": { "ns_per_op": 45, "allocs_per_op": 0 },
    "BenchmarkAllReduceP1024":       { "ns_per_op": 6000000, "sim_ms": 5.2, "max_ns_per_op": 10000000 }
  }
}`,
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// simVals are the BENCH_sim.json-gated metrics of a fake bench run.
type simVals struct {
	events, allocs, p1024Ns, p1024SimMS float64
}

// simAtBaseline passes every BENCH_sim.json gate.
var simAtBaseline = simVals{events: 8000000, allocs: 0, p1024Ns: 6000000, p1024SimMS: 5.2}

// benchText renders a fake `go test -bench` output with the given sim_ms
// and GFLOPS values and the sim-kernel metrics at baseline.
func benchText(treeSimMS, hierSimMS, bucketSimMS, gflops float64) string {
	return benchTextSim(treeSimMS, hierSimMS, bucketSimMS, gflops, simAtBaseline)
}

func benchTextSim(treeSimMS, hierSimMS, bucketSimMS, gflops float64, s simVals) string {
	var sb strings.Builder
	sb.WriteString("goos: linux\ngoarch: amd64\npkg: scaledl/internal/comm\n")
	w := func(name string, metrics string) {
		sb.WriteString(name + "-1 \t 10\t " + metrics + "\n")
	}
	w("BenchmarkAllReduceTree", f(50000000)+" ns/op\t "+f(treeSimMS)+" sim_ms")
	w("BenchmarkAllReduceHier", f(300000)+" ns/op\t "+f(hierSimMS)+" sim_ms")
	w("BenchmarkAllReduceBucketed4", f(33000000)+" ns/op\t "+f(bucketSimMS)+" sim_ms")
	w("BenchmarkGEMM/20x500x576", f(748799)+" ns/op\t "+f(gflops)+" GFLOPS\t 0 B/op\t 0 allocs/op")
	w("BenchmarkSimThroughput", f(250)+" ns/op\t "+f(s.events)+" events/sec\t 0 B/op\t 0 allocs/op")
	w("BenchmarkSimSteadyStateAllocs", f(45)+" ns/op\t 0 B/op\t "+f(s.allocs)+" allocs/op")
	w("BenchmarkAllReduceP1024", f(s.p1024Ns)+" ns/op\t "+f(s.p1024SimMS)+" sim_ms")
	return sb.String()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// runGate writes benchOut to a file and gates it against dir's baselines
// under the tier the test fixtures record.
func runGate(t *testing.T, dir, benchOut string, update bool) []gateRow {
	return runGateTier(t, dir, benchOut, "avx512", update)
}

func runGateTier(t *testing.T, dir, benchOut, tier string, update bool) []gateRow {
	t.Helper()
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(benchOut), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := parseBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := gate(dir, tier, results, 0.15, update)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func countStatus(rows []gateRow, status string) int {
	n := 0
	for _, r := range rows {
		if r.Status == status {
			n++
		}
	}
	return n
}

// At baseline values the gate passes every gated metric and skips the
// host-speed (ns-only) entries.
func TestGatePassesAtBaseline(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	rows := runGate(t, dir, benchText(5.0, 3.4, 1.25, 15.0), false)
	if n := countStatus(rows, statusFail); n != 0 {
		t.Errorf("%d FAIL rows at baseline: %+v", n, rows)
	}
	// 4 sim_ms/GFLOPS gates + events/sec + allocs/op + P1024 sim_ms + P1024
	// ns/op ceiling.
	if n := countStatus(rows, statusOK); n != 8 {
		t.Errorf("%d ok rows, want 8 gated metrics", n)
	}
	if n := countStatus(rows, statusSkipped); n != 2 {
		t.Errorf("%d skipped rows, want 2 ns-only entries", n)
	}
}

// Drift inside the 15% tolerance passes; a >15% sim_ms regression fails —
// the injected-regression demonstration of the CI gate.
func TestGateFailsOnInjectedSimRegression(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	// +10% on one sim_ms: within tolerance.
	rows := runGate(t, dir, benchText(5.5, 3.4, 1.25, 15.0), false)
	if countStatus(rows, statusFail) != 0 {
		t.Errorf("10%% drift flagged as regression: %+v", rows)
	}
	// +20% on one sim_ms: must fail.
	rows = runGate(t, dir, benchText(6.0, 3.4, 1.25, 15.0), false)
	if countStatus(rows, statusFail) != 1 {
		t.Errorf("injected 20%% sim_ms regression not caught: %+v", rows)
	}
	if rows[0].Name != "AllReduceTree" || rows[0].Status != statusFail {
		t.Errorf("FAIL row not sorted first: %+v", rows[0])
	}
}

// A >15% GFLOPS drop fails; a GFLOPS gain is an improvement, not a failure.
func TestGateFailsOnInjectedGFLOPSRegression(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	rows := runGate(t, dir, benchText(5.0, 3.4, 1.25, 12.0), false) // -20%
	if countStatus(rows, statusFail) != 1 {
		t.Errorf("injected GFLOPS regression not caught: %+v", rows)
	}
	rows = runGate(t, dir, benchText(5.0, 3.4, 1.25, 30.0), false) // +100%
	if countStatus(rows, statusFail) != 0 || countStatus(rows, statusImproved) != 1 {
		t.Errorf("GFLOPS improvement misclassified: %+v", rows)
	}
}

// A gated baseline whose benchmark never ran is a gate-integrity failure
// (someone narrowed the -bench pattern).
func TestGateFlagsMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	out := benchText(5.0, 3.4, 1.25, 15.0)
	out = strings.ReplaceAll(out, "BenchmarkAllReduceHier", "BenchmarkSomethingElse")
	rows := runGate(t, dir, out, false)
	if countStatus(rows, statusMissing) != 1 {
		t.Errorf("missing benchmark not flagged: %+v", rows)
	}
}

// -update rewrites the gated metrics in place; a rerun against the fresh
// values then passes.
func TestGateUpdateRewritesBaselines(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	out := benchText(6.5, 3.4, 1.25, 18.0)
	if rows := runGate(t, dir, out, false); countStatus(rows, statusFail) != 1 {
		t.Fatalf("expected one failure before update: %+v", rows)
	}
	runGate(t, dir, out, true)
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_comm.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base simBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if got := base.Benchmarks["BenchmarkAllReduceTree"].SimMS; got != 6.5 {
		t.Errorf("sim_ms not rewritten: %v", got)
	}
	if rows := runGate(t, dir, out, false); countStatus(rows, statusFail) != 0 {
		t.Errorf("gate still failing after -update: %+v", rows)
	}
}

// events/sec is a higher-better gate: a throughput drop beyond tolerance
// fails, a gain is an improvement.
func TestGateEventsPerSecHigherBetter(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	s := simAtBaseline
	s.events = 6000000 // -25%
	rows := runGate(t, dir, benchTextSim(5.0, 3.4, 1.25, 15.0, s), false)
	if countStatus(rows, statusFail) != 1 {
		t.Errorf("events/sec regression not caught: %+v", rows)
	}
	s.events = 10000000 // +25%
	rows = runGate(t, dir, benchTextSim(5.0, 3.4, 1.25, 15.0, s), false)
	if countStatus(rows, statusFail) != 0 || countStatus(rows, statusImproved) != 1 {
		t.Errorf("events/sec improvement misclassified: %+v", rows)
	}
}

// allocs_per_op is gated exactly: one allocation on the steady-state hot
// path fails regardless of tolerance.
func TestGateFailsOnSingleAllocRegression(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	s := simAtBaseline
	s.allocs = 1
	rows := runGate(t, dir, benchTextSim(5.0, 3.4, 1.25, 15.0, s), false)
	if countStatus(rows, statusFail) != 1 {
		t.Errorf("single-alloc regression not caught: %+v", rows)
	}
}

// max_ns_per_op is an absolute ceiling: real CPU cost above it fails even
// when the relative metrics pass, and -update never rewrites the ceiling.
func TestGateCeilingIsAbsoluteAndSticky(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	s := simAtBaseline
	s.p1024Ns = 12000000 // over the 10 ms ceiling
	rows := runGate(t, dir, benchTextSim(5.0, 3.4, 1.25, 15.0, s), false)
	failed := false
	for _, r := range rows {
		if r.Status == statusFail && r.Metric == "ns/op" {
			failed = true
		}
	}
	if !failed {
		t.Errorf("ceiling breach not caught: %+v", rows)
	}
	runGate(t, dir, benchTextSim(5.0, 3.4, 1.25, 15.0, s), true)
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_sim.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base simKernelBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	entry := base.Benchmarks["BenchmarkAllReduceP1024"]
	if entry.MaxNsPerOp != 10000000 {
		t.Errorf("-update rewrote the ceiling: %d", entry.MaxNsPerOp)
	}
	if entry.NsPerOp != 12000000 {
		t.Errorf("-update did not rewrite ns_per_op: %d", entry.NsPerOp)
	}
}

// GFLOPS baselines are tier-keyed: gating under a tier with no recorded
// value reports MISSING (with the recorded tiers named), never a bogus
// comparison against another tier's number; -update under that tier records
// the new key without touching the existing ones.
func TestGateTierKeyedGFLOPS(t *testing.T) {
	dir := t.TempDir()
	writeTestBaselines(t, dir)
	// 7.5 GFLOPS would be a 50% "regression" against the avx512 baseline;
	// under the neon tier it must surface as MISSING instead.
	out := benchText(5.0, 3.4, 1.25, 7.5)
	rows := runGateTier(t, dir, out, "neon", false)
	found := false
	for _, r := range rows {
		if r.File == "BENCH_gemm.json" && r.Status == statusMissing {
			found = true
			if !strings.Contains(r.Note, `"neon"`) || !strings.Contains(r.Note, "avx512") {
				t.Errorf("MISSING-tier note should name the missing and recorded tiers: %q", r.Note)
			}
		}
		if r.File == "BENCH_gemm.json" && r.Status == statusFail {
			t.Errorf("cross-tier comparison produced a bogus regression: %+v", r)
		}
	}
	if !found {
		t.Fatalf("missing tier baseline not flagged: %+v", rows)
	}

	runGateTier(t, dir, out, "neon", true)
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_gemm.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base gemmBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	got := base.Benchmarks[0].GFLOPSByTier
	if got["neon"] != 7.5 || got["avx512"] != 15.0 {
		t.Errorf("-update should add the neon key and keep avx512: %v", got)
	}
	if rows := runGateTier(t, dir, out, "neon", false); countStatus(rows, statusFail)+countStatus(rows, statusMissing) != 0 {
		t.Errorf("gate still unhappy after recording the tier: %+v", rows)
	}
}

// The real checked-in baselines parse and every gated entry has a matching
// benchmark name shape (guards against renames drifting past the gate).
// BENCH_serve.json gates req/s higher-better with the tolerance and
// allocs/op exactly; -update records mean_batch without gating it.
func TestGateServe(t *testing.T) {
	dir := t.TempDir()
	baseline := `{
  "description": "test",
  "benchmarks": {
    "BenchmarkServeSolo":      { "ns_per_op": 32000, "req_per_sec": 31000, "allocs_per_op": 0 },
    "BenchmarkServeCoalesced": { "ns_per_op": 25000, "req_per_sec": 39000, "allocs_per_op": 0, "mean_batch": 8.0 }
  }
}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_serve.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := func(soloRPS, coalRPS, coalAllocs float64) string {
		return "BenchmarkServeSolo-1 \t 10\t 32000 ns/op\t " + f(soloRPS) + " req/s\t 0 B/op\t 0 allocs/op\n" +
			"BenchmarkServeCoalesced-1 \t 10\t 25000 ns/op\t 7.9 mean-batch\t " + f(coalRPS) +
			" req/s\t 0 B/op\t " + f(coalAllocs) + " allocs/op\n"
	}

	// At baseline everything passes: 2 req/s gates + 2 allocs gates.
	rows := runGate(t, dir, bench(31000, 39000, 0), false)
	serveOK := 0
	for _, r := range rows {
		if r.File == "BENCH_serve.json" {
			if r.Status != statusOK {
				t.Errorf("at baseline: %+v", r)
			}
			serveOK++
		}
	}
	if serveOK != 4 {
		t.Errorf("gated %d serve rows, want 4", serveOK)
	}

	// Throughput is higher-better: a drop beyond tolerance fails, a gain
	// reports improved.
	rows = runGate(t, dir, bench(31000, 20000, 0), false)
	if !hasRow(rows, "ServeCoalesced", "req/s", statusFail) {
		t.Errorf("throughput collapse not failed: %+v", rows)
	}
	rows = runGate(t, dir, bench(31000, 60000, 0), false)
	if !hasRow(rows, "ServeCoalesced", "req/s", statusImproved) {
		t.Errorf("throughput gain not improved: %+v", rows)
	}

	// One allocation in the hot path fails regardless of tolerance.
	rows = runGate(t, dir, bench(31000, 39000, 1), false)
	if !hasRow(rows, "ServeCoalesced", "allocs/op", statusFail) {
		t.Errorf("alloc regression not failed: %+v", rows)
	}

	// -update rewrites req/s and mean_batch from the fresh run.
	runGate(t, dir, bench(35000, 41000, 0), true)
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var updated serveBaseline
	if err := json.Unmarshal(raw, &updated); err != nil {
		t.Fatal(err)
	}
	coal := updated.Benchmarks["BenchmarkServeCoalesced"]
	if coal.ReqPerSec != 41000 || coal.MeanBatch != 7.9 {
		t.Errorf("update wrote req_per_sec=%v mean_batch=%v", coal.ReqPerSec, coal.MeanBatch)
	}
	if updated.Benchmarks["BenchmarkServeSolo"].ReqPerSec != 35000 {
		t.Errorf("update wrote solo req_per_sec=%v", updated.Benchmarks["BenchmarkServeSolo"].ReqPerSec)
	}
}

func hasRow(rows []gateRow, name, metric, status string) bool {
	for _, r := range rows {
		if r.Name == name && r.Metric == metric && r.Status == status {
			return true
		}
	}
	return false
}

func TestRealBaselinesParse(t *testing.T) {
	root := filepath.Join("..", "..")
	results := map[string]benchResult{}
	rows, err := gate(root, "avx512", results, 0.15, false)
	if err != nil {
		t.Fatal(err)
	}
	// With no fresh results, every gated metric must surface as MISSING —
	// proving the baselines parse and are all actually gated.
	missing := countStatus(rows, statusMissing)
	if missing == 0 {
		t.Error("no gated baselines found in checked-in BENCH_*.json")
	}
	if countStatus(rows, statusFail) != 0 {
		t.Errorf("unexpected FAIL with empty fresh results: %+v", rows)
	}
}
