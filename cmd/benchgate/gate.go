package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed `go test -bench` line: the benchmark name
// (Benchmark prefix and -N GOMAXPROCS suffix stripped) and its metrics by
// unit ("ns/op", "sim_ms", "GFLOPS", "allocs/op", …).
type benchResult struct {
	Name    string
	Metrics map[string]float64
}

var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBenchFile extracts benchmark results from `go test -bench` output.
func parseBenchFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := benchResult{Name: m[1], Metrics: map[string]float64{}}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad metric value %q", res.Name, fields[i])
			}
			res.Metrics[fields[i+1]] = v
		}
		out[res.Name] = res
	}
	return out, sc.Err()
}

// Gate row statuses.
const (
	statusOK       = "ok"
	statusFail     = "FAIL"
	statusImproved = "improved"
	statusMissing  = "MISSING"
	statusSkipped  = "-"
)

// gateRow is one gated comparison for the report table.
type gateRow struct {
	File, Name, Metric  string
	Base, Fresh, Change float64 // Change: fractional delta, signed so that > 0 means regression
	Status              string
	Note                string
}

// simBaseline mirrors BENCH_comm.json / BENCH_overlap.json.
type simBaseline struct {
	Description string               `json:"description"`
	Benchmarks  map[string]*simEntry `json:"benchmarks"`
}

type simEntry struct {
	NsPerOp int64   `json:"ns_per_op"`
	SimMS   float64 `json:"sim_ms"`
}

// simKernelBaseline mirrors BENCH_sim.json: the event-kernel and
// thousand-node collective baselines. Beyond sim_ms it gates three metric
// kinds the other sim files don't:
//
//   - events_per_sec — kernel throughput, higher-better, gated with the
//     shared tolerance (host-dependent but order-of-magnitude stable);
//   - allocs_per_op — gated exactly: the steady-state hot path is
//     allocation-free by construction, so any increase fails outright;
//   - events_per_op — the deterministic wake-up count of a simulated
//     workload (sim.Env.Events), gated exactly: unlike ns/op it is a pure
//     function of the simulation's inputs, so it pins scheduler *work*
//     without runner noise — e.g. the fault-free-overhead contract of the
//     chaos layer, where guarded-path machinery leaking into the fast
//     path would add ack/timer events per message;
//   - max_ns_per_op — an absolute real-time ceiling on the fresh ns/op
//     (deliberately generous for runner noise). It encodes a contract —
//     "a P=1024 sweep point stays under N ms of real CPU" — so -update
//     never rewrites it.
type simKernelBaseline struct {
	Description string                     `json:"description"`
	Benchmarks  map[string]*simKernelEntry `json:"benchmarks"`
}

type simKernelEntry struct {
	NsPerOp      int64    `json:"ns_per_op"`
	EventsPerSec float64  `json:"events_per_sec,omitempty"`
	SimMS        float64  `json:"sim_ms,omitempty"`
	AllocsPerOp  *float64 `json:"allocs_per_op,omitempty"`
	EventsPerOp  *float64 `json:"events_per_op,omitempty"`
	MaxNsPerOp   int64    `json:"max_ns_per_op,omitempty"`
}

// serveBaseline mirrors BENCH_serve.json: the inference-serving baselines.
// Two metrics are gated per entry:
//
//   - req_per_sec — serving throughput through the batcher, higher-better,
//     gated with the shared tolerance (host-dependent but order-of-magnitude
//     stable: a lost coalescing path halves it);
//   - allocs_per_op — gated exactly: the batching hot path (admission →
//     coalesce → PredictInto → fan-out) is allocation-free in steady state
//     by contract, so any increase fails outright.
//
// mean_batch is recorded by -update for reference (it shows coalescing is
// actually happening) but not gated: it depends on sender scheduling.
type serveBaseline struct {
	Description string                 `json:"description"`
	Benchmarks  map[string]*serveEntry `json:"benchmarks"`
}

type serveEntry struct {
	NsPerOp     int64    `json:"ns_per_op"`
	ReqPerSec   float64  `json:"req_per_sec"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MeanBatch   float64  `json:"mean_batch,omitempty"`
}

// gemmBaseline mirrors BENCH_gemm.json.
type gemmBaseline struct {
	Description string         `json:"description"`
	Environment map[string]any `json:"environment,omitempty"`
	Invariants  map[string]any `json:"invariants,omitempty"`
	Benchmarks  []*gemmEntry   `json:"benchmarks"`
	Notes       string         `json:"notes,omitempty"`
}

// gemmEntry's GFLOPS baselines are keyed by kernel tier ("avx512", "avx2",
// "sse2", "neon", "generic"): the same benchmark legitimately runs 2× faster
// or slower depending on which micro-kernel the host dispatches to, so a
// single number would either mask an AVX-512 regression or fail every SSE2
// host. The gate compares only against the running tier's key; a missing key
// is reported as MISSING with instructions, never as a bogus regression.
type gemmEntry struct {
	Name         string             `json:"name"`
	NsOp         int64              `json:"ns_op"`
	GFLOPSByTier map[string]float64 `json:"gflops_by_tier,omitempty"`
	AllocsOp     *int64             `json:"allocs_op,omitempty"`
	OldNsOp      int64              `json:"old_ns_op,omitempty"`
	OldGFLOPS    float64            `json:"old_gflops,omitempty"`
	Speedup      float64            `json:"speedup,omitempty"`
}

// tierKeys lists an entry's recorded tiers for the MISSING note.
func tierKeys(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// gemmBenchName maps a baseline entry name to its benchmark name: the part
// before any parenthesized qualifier ("Conv2DForward (LeNet conv2, batch
// 16)" ran as BenchmarkConv2DForward).
func gemmBenchName(name string) string {
	if i := strings.Index(name, " ("); i >= 0 {
		return name[:i]
	}
	return name
}

// gate compares fresh results against every baseline file present in dir
// and returns the report rows, most severe first within each file. tier
// selects which gflops_by_tier key of BENCH_gemm.json to gate (and, with
// update, to rewrite). With update set, the gated metrics (and ns/op) in the
// baselines are rewritten from the fresh results instead.
func gate(dir, tier string, fresh map[string]benchResult, tol float64, update bool) ([]gateRow, error) {
	var rows []gateRow

	for _, simFile := range []string{"BENCH_comm.json", "BENCH_overlap.json"} {
		path := filepath.Join(dir, simFile)
		raw, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		} else if err != nil {
			return nil, err
		}
		var base simBaseline
		if err := json.Unmarshal(raw, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", simFile, err)
		}
		names := make([]string, 0, len(base.Benchmarks))
		for name := range base.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		changed := false
		for _, name := range names {
			entry := base.Benchmarks[name]
			short := strings.TrimPrefix(name, "Benchmark")
			got, ok := fresh[short]
			if !ok {
				rows = append(rows, gateRow{File: simFile, Name: short, Metric: "sim_ms",
					Base: entry.SimMS, Status: statusMissing, Note: "benchmark did not run"})
				continue
			}
			simMS, ok := got.Metrics["sim_ms"]
			if !ok {
				rows = append(rows, gateRow{File: simFile, Name: short, Metric: "sim_ms",
					Base: entry.SimMS, Status: statusMissing, Note: "no sim_ms metric reported"})
				continue
			}
			if update {
				entry.SimMS = simMS
				if ns, ok := got.Metrics["ns/op"]; ok {
					entry.NsPerOp = int64(ns)
				}
				changed = true
				continue
			}
			rows = append(rows, compare(simFile, short, "sim_ms", entry.SimMS, simMS, tol, false))
		}
		if update && changed {
			out, err := json.MarshalIndent(base, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
				return nil, err
			}
		}
	}

	simRows, err := gateSimKernel(dir, fresh, tol, update)
	if err != nil {
		return nil, err
	}
	rows = append(rows, simRows...)

	serveRows, err := gateServe(dir, fresh, tol, update)
	if err != nil {
		return nil, err
	}
	rows = append(rows, serveRows...)

	path := filepath.Join(dir, "BENCH_gemm.json")
	raw, err := os.ReadFile(path)
	if err == nil {
		var base gemmBaseline
		if err := json.Unmarshal(raw, &base); err != nil {
			return nil, fmt.Errorf("BENCH_gemm.json: %w", err)
		}
		changed := false
		for _, entry := range base.Benchmarks {
			// A nil map marks an ns-only entry; an empty one ("gflops_by_tier":
			// {}) is a gated entry awaiting its first -update.
			if entry.GFLOPSByTier == nil {
				// ns-only entries (MatMul, Im2col, Conv2D…) are host-speed
				// measurements; reported for reference, never gated.
				rows = append(rows, gateRow{File: "BENCH_gemm.json", Name: entry.Name,
					Metric: "ns/op", Base: float64(entry.NsOp), Status: statusSkipped,
					Note: "host-speed metric, not gated"})
				continue
			}
			got, ok := fresh[gemmBenchName(entry.Name)]
			if !ok {
				rows = append(rows, gateRow{File: "BENCH_gemm.json", Name: entry.Name,
					Metric: "GFLOPS", Base: entry.GFLOPSByTier[tier], Status: statusMissing, Note: "benchmark did not run"})
				continue
			}
			gflops, ok := got.Metrics["GFLOPS"]
			if !ok {
				rows = append(rows, gateRow{File: "BENCH_gemm.json", Name: entry.Name,
					Metric: "GFLOPS", Base: entry.GFLOPSByTier[tier], Status: statusMissing, Note: "no GFLOPS metric reported"})
				continue
			}
			if update {
				entry.GFLOPSByTier[tier] = gflops
				if ns, ok := got.Metrics["ns/op"]; ok {
					entry.NsOp = int64(ns)
				}
				if al, ok := got.Metrics["allocs/op"]; ok {
					v := int64(al)
					entry.AllocsOp = &v
				}
				if entry.OldGFLOPS > 0 {
					// Speedup reports the widest recorded tier against the
					// pre-engine scalar code.
					best := 0.0
					for _, v := range entry.GFLOPSByTier {
						if v > best {
							best = v
						}
					}
					entry.Speedup = best / entry.OldGFLOPS
				}
				changed = true
				continue
			}
			baseGF, ok := entry.GFLOPSByTier[tier]
			if !ok {
				rows = append(rows, gateRow{File: "BENCH_gemm.json", Name: entry.Name,
					Metric: "GFLOPS", Status: statusMissing,
					Note: fmt.Sprintf("no baseline for kernel tier %q (recorded: %s) — record one with -update on this host",
						tier, tierKeys(entry.GFLOPSByTier))})
				continue
			}
			rows = append(rows, compare("BENCH_gemm.json", entry.Name, "GFLOPS", baseGF, gflops, tol, true))
		}
		if update && changed {
			out, err := json.MarshalIndent(base, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
				return nil, err
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	sort.SliceStable(rows, func(i, j int) bool { return severity(rows[i].Status) < severity(rows[j].Status) })
	return rows, nil
}

// gateSimKernel gates BENCH_sim.json. Each entry may pin several metrics at
// once; every pinned metric produces its own row.
func gateSimKernel(dir string, fresh map[string]benchResult, tol float64, update bool) ([]gateRow, error) {
	const simFile = "BENCH_sim.json"
	path := filepath.Join(dir, simFile)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	} else if err != nil {
		return nil, err
	}
	var base simKernelBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", simFile, err)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []gateRow
	changed := false
	for _, name := range names {
		entry := base.Benchmarks[name]
		short := strings.TrimPrefix(name, "Benchmark")
		got, ok := fresh[short]
		if !ok {
			rows = append(rows, gateRow{File: simFile, Name: short, Metric: "ns/op",
				Base: float64(entry.NsPerOp), Status: statusMissing, Note: "benchmark did not run"})
			continue
		}
		if update {
			if ns, ok := got.Metrics["ns/op"]; ok {
				entry.NsPerOp = int64(ns)
			}
			if ev, ok := got.Metrics["events/sec"]; ok && entry.EventsPerSec > 0 {
				entry.EventsPerSec = ev
			}
			if ms, ok := got.Metrics["sim_ms"]; ok && entry.SimMS > 0 {
				entry.SimMS = ms
			}
			if al, ok := got.Metrics["allocs/op"]; ok && entry.AllocsPerOp != nil {
				entry.AllocsPerOp = &al
			}
			if ev, ok := got.Metrics["events/op"]; ok && entry.EventsPerOp != nil {
				entry.EventsPerOp = &ev
			}
			// MaxNsPerOp is a contract, never a measurement: left untouched.
			changed = true
			continue
		}
		need := func(metric string, gateBase float64, do func(v float64) gateRow) {
			v, ok := got.Metrics[metric]
			if !ok {
				rows = append(rows, gateRow{File: simFile, Name: short, Metric: metric,
					Base: gateBase, Status: statusMissing, Note: "no " + metric + " metric reported"})
				return
			}
			rows = append(rows, do(v))
		}
		if entry.SimMS > 0 {
			need("sim_ms", entry.SimMS, func(v float64) gateRow {
				return compare(simFile, short, "sim_ms", entry.SimMS, v, tol, false)
			})
		}
		if entry.EventsPerSec > 0 {
			need("events/sec", entry.EventsPerSec, func(v float64) gateRow {
				return compare(simFile, short, "events/sec", entry.EventsPerSec, v, tol, true)
			})
		}
		if entry.AllocsPerOp != nil {
			need("allocs/op", *entry.AllocsPerOp, func(v float64) gateRow {
				row := gateRow{File: simFile, Name: short, Metric: "allocs/op",
					Base: *entry.AllocsPerOp, Fresh: v}
				switch {
				case v > *entry.AllocsPerOp:
					row.Status = statusFail
					row.Note = fmt.Sprintf("hot path allocates: %.0f allocs/op (baseline %.0f, gated exactly)",
						v, *entry.AllocsPerOp)
				case v < *entry.AllocsPerOp:
					row.Status = statusImproved
					row.Note = "fewer allocations than baseline — consider regenerating with -update"
				default:
					row.Status = statusOK
				}
				return row
			})
		}
		if entry.EventsPerOp != nil {
			need("events/op", *entry.EventsPerOp, func(v float64) gateRow {
				row := gateRow{File: simFile, Name: short, Metric: "events/op",
					Base: *entry.EventsPerOp, Fresh: v}
				switch {
				case v > *entry.EventsPerOp:
					row.Status = statusFail
					row.Note = fmt.Sprintf("scheduler work grew: %.0f events/op (baseline %.0f, gated exactly — deterministic)",
						v, *entry.EventsPerOp)
				case v < *entry.EventsPerOp:
					row.Status = statusImproved
					row.Note = "fewer events than baseline — consider regenerating with -update"
				default:
					row.Status = statusOK
				}
				return row
			})
		}
		if entry.MaxNsPerOp > 0 {
			need("ns/op", float64(entry.MaxNsPerOp), func(v float64) gateRow {
				row := gateRow{File: simFile, Name: short, Metric: "ns/op",
					Base: float64(entry.MaxNsPerOp), Fresh: v, Change: v/float64(entry.MaxNsPerOp) - 1}
				if v > float64(entry.MaxNsPerOp) {
					row.Status = statusFail
					row.Note = fmt.Sprintf("breached the absolute real-time ceiling of %d ns/op", entry.MaxNsPerOp)
				} else {
					row.Status = statusOK
					row.Note = "absolute ceiling, not a relative gate"
				}
				return row
			})
		}
	}
	if update && changed {
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// gateServe gates BENCH_serve.json: req/s with the shared tolerance
// (higher-better), allocs/op exactly.
func gateServe(dir string, fresh map[string]benchResult, tol float64, update bool) ([]gateRow, error) {
	const serveFile = "BENCH_serve.json"
	path := filepath.Join(dir, serveFile)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	} else if err != nil {
		return nil, err
	}
	var base serveBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", serveFile, err)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []gateRow
	changed := false
	for _, name := range names {
		entry := base.Benchmarks[name]
		short := strings.TrimPrefix(name, "Benchmark")
		got, ok := fresh[short]
		if !ok {
			rows = append(rows, gateRow{File: serveFile, Name: short, Metric: "req/s",
				Base: entry.ReqPerSec, Status: statusMissing, Note: "benchmark did not run"})
			continue
		}
		if update {
			if ns, ok := got.Metrics["ns/op"]; ok {
				entry.NsPerOp = int64(ns)
			}
			if rs, ok := got.Metrics["req/s"]; ok {
				entry.ReqPerSec = rs
			}
			if al, ok := got.Metrics["allocs/op"]; ok && entry.AllocsPerOp != nil {
				entry.AllocsPerOp = &al
			}
			if mb, ok := got.Metrics["mean-batch"]; ok {
				entry.MeanBatch = mb
			}
			changed = true
			continue
		}
		if rs, ok := got.Metrics["req/s"]; ok {
			rows = append(rows, compare(serveFile, short, "req/s", entry.ReqPerSec, rs, tol, true))
		} else {
			rows = append(rows, gateRow{File: serveFile, Name: short, Metric: "req/s",
				Base: entry.ReqPerSec, Status: statusMissing, Note: "no req/s metric reported"})
		}
		if entry.AllocsPerOp != nil {
			al, ok := got.Metrics["allocs/op"]
			if !ok {
				rows = append(rows, gateRow{File: serveFile, Name: short, Metric: "allocs/op",
					Base: *entry.AllocsPerOp, Status: statusMissing, Note: "no allocs/op metric reported"})
				continue
			}
			row := gateRow{File: serveFile, Name: short, Metric: "allocs/op",
				Base: *entry.AllocsPerOp, Fresh: al}
			switch {
			case al > *entry.AllocsPerOp:
				row.Status = statusFail
				row.Note = fmt.Sprintf("serving hot path allocates: %.0f allocs/op (baseline %.0f, gated exactly)",
					al, *entry.AllocsPerOp)
			case al < *entry.AllocsPerOp:
				row.Status = statusImproved
				row.Note = "fewer allocations than baseline — consider regenerating with -update"
			default:
				row.Status = statusOK
			}
			rows = append(rows, row)
		}
	}
	if update && changed {
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func severity(status string) int {
	switch status {
	case statusFail:
		return 0
	case statusMissing:
		return 1
	case statusImproved:
		return 2
	case statusOK:
		return 3
	default:
		return 4
	}
}

// compare gates one metric. higherBetter selects the direction (GFLOPS)
// versus cost metrics (sim_ms).
func compare(file, name, metric string, base, fresh, tol float64, higherBetter bool) gateRow {
	row := gateRow{File: file, Name: name, Metric: metric, Base: base, Fresh: fresh}
	if base <= 0 {
		row.Status = statusSkipped
		row.Note = "no baseline value"
		return row
	}
	change := fresh/base - 1
	if higherBetter {
		change = -change // normalize: positive change = regression
	}
	row.Change = change
	switch {
	case change > tol:
		row.Status = statusFail
		row.Note = fmt.Sprintf("regressed %.1f%% (tolerance %.0f%%)", change*100, tol*100)
	case change < -tol:
		row.Status = statusImproved
		row.Note = "faster than baseline — consider regenerating with -update"
	default:
		row.Status = statusOK
	}
	return row
}

func printTable(w io.Writer, rows []gateRow) {
	fmt.Fprintf(w, "%-18s %-42s %-7s %12s %12s %8s  %-8s %s\n",
		"baseline", "benchmark", "metric", "base", "fresh", "delta", "status", "note")
	for _, r := range rows {
		fresh, delta := "-", "-"
		if r.Status != statusMissing && r.Status != statusSkipped {
			fresh = fmt.Sprintf("%.4g", r.Fresh)
			delta = fmt.Sprintf("%+.1f%%", r.Change*100)
		}
		fmt.Fprintf(w, "%-18s %-42s %-7s %12.4g %12s %8s  %-8s %s\n",
			r.File, r.Name, r.Metric, r.Base, fresh, delta, r.Status, r.Note)
	}
}

// writeMarkdown renders the rows as a GitHub job-summary table.
func writeMarkdown(w io.Writer, rows []gateRow, tol float64, tier string) {
	fmt.Fprintf(w, "## Benchmark gate (tolerance %.0f%%, kernel tier `%s`)\n\n", tol*100, tier)
	fmt.Fprintln(w, "| status | baseline | benchmark | metric | base | fresh | delta |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
	for _, r := range rows {
		fresh, delta := "—", "—"
		if r.Status != statusMissing && r.Status != statusSkipped {
			fresh = fmt.Sprintf("%.4g", r.Fresh)
			delta = fmt.Sprintf("%+.1f%%", r.Change*100)
		}
		icon := map[string]string{
			statusOK: "✅", statusFail: "❌", statusImproved: "🚀", statusMissing: "⚠️", statusSkipped: "➖",
		}[r.Status]
		fmt.Fprintf(w, "| %s %s | %s | %s | %s | %.4g | %s | %s |\n",
			icon, r.Status, r.File, r.Name, r.Metric, r.Base, fresh, delta)
	}
	fmt.Fprintln(w)
}
