package scaledl

// One benchmark per table and figure of the paper's evaluation (deliverable
// (d) of DESIGN.md), plus micro-benchmarks of the substrates. Each
// experiment benchmark regenerates its artifact through the harness and
// reports the headline quantity as a custom metric; run
//
//	go test -bench=. -benchmem
//
// to produce them all, or use cmd/scaledl-bench to print the full tables.

import (
	"strconv"
	"strings"
	"testing"

	"scaledl/internal/comm"
	"scaledl/internal/core"
	"scaledl/internal/hw"
	"scaledl/internal/nn"
)

// benchOptions keeps per-iteration cost modest: budgets scale down but
// every experiment still runs end to end.
var benchOptions = Options{Seed: 1, Scale: 0.5}

func runExperimentBench(b *testing.B, id string, metric func(*Report) (string, float64)) {
	b.Helper()
	if testing.Short() {
		b.Skipf("experiment %s trains real models; skipped in -short mode", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := RunExperiment(id, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			if name, v := metric(rep); name != "" {
				b.ReportMetric(v, name)
			}
		}
		if i == 0 && testing.Verbose() {
			b.Logf("\n%s", rep)
		}
	}
}

// parseSuffixed parses "3.45x" or "92%" style cells.
func parseSuffixed(cell, suffix string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, suffix), 64)
	if err != nil {
		return 0
	}
	return v
}

// BenchmarkTable2AlphaBeta regenerates Table 2 (α-β network model) and
// reports the Θ(P)/Θ(log P) advantage at P=64.
func BenchmarkTable2AlphaBeta(b *testing.B) {
	runExperimentBench(b, "table2", func(r *Report) (string, float64) {
		t := r.Tables[3] // tree-vs-round-robin table, row P=64
		return "tree-speedup-p64", parseSuffixed(t.Cell(2, 3), "x")
	})
}

// BenchmarkTable3Breakdown regenerates Table 3 (time breakdown of EASGD
// variants at equal accuracy) and reports Sync EASGD3's speedup over
// Original EASGD (paper: 5.3×).
func BenchmarkTable3Breakdown(b *testing.B) {
	runExperimentBench(b, "table3", func(r *Report) (string, float64) {
		t := r.Tables[0]
		return "sync3-speedup", parseSuffixed(t.Cell(len(t.Rows)-1, len(t.Columns)-1), "x")
	})
}

// BenchmarkFig11BreakdownChart regenerates Figure 11 (the chart view of
// Table 3).
func BenchmarkFig11BreakdownChart(b *testing.B) {
	runExperimentBench(b, "fig11", nil)
}

// BenchmarkFig6AsyncEASGD regenerates Figure 6.1 (Async EASGD vs Async SGD).
func BenchmarkFig6AsyncEASGD(b *testing.B) {
	runExperimentBench(b, "fig6.1", nil)
}

// BenchmarkFig6AsyncMEASGD regenerates Figure 6.2 (Async MEASGD vs MSGD).
func BenchmarkFig6AsyncMEASGD(b *testing.B) {
	runExperimentBench(b, "fig6.2", nil)
}

// BenchmarkFig6HogwildEASGD regenerates Figure 6.3 (Hogwild EASGD vs SGD).
func BenchmarkFig6HogwildEASGD(b *testing.B) {
	runExperimentBench(b, "fig6.3", nil)
}

// BenchmarkFig6SyncEASGD regenerates Figure 6.4 (Sync vs Original EASGD).
func BenchmarkFig6SyncEASGD(b *testing.B) {
	runExperimentBench(b, "fig6.4", nil)
}

// BenchmarkFig8Overall regenerates Figure 8 (all methods, log10 error rate
// versus time).
func BenchmarkFig8Overall(b *testing.B) {
	runExperimentBench(b, "fig8", nil)
}

// BenchmarkFig10PackedComm regenerates Figure 10 and reports the packed-
// over-per-layer speedup at equal iterations.
func BenchmarkFig10PackedComm(b *testing.B) {
	runExperimentBench(b, "fig10", func(r *Report) (string, float64) {
		t := r.Tables[1]
		return "packed-speedup", parseSuffixed(t.Cell(1, 4), "x")
	})
}

// BenchmarkFig12KNLPartition regenerates Figure 12 and reports the 16-part
// speedup (paper: 3.3×).
func BenchmarkFig12KNLPartition(b *testing.B) {
	runExperimentBench(b, "fig12", func(r *Report) (string, float64) {
		t := r.Tables[0]
		return "speedup-16parts", parseSuffixed(t.Cell(3, 5), "x")
	})
}

// BenchmarkFig13WeakScalingBenefit regenerates Figure 13.
func BenchmarkFig13WeakScalingBenefit(b *testing.B) {
	runExperimentBench(b, "fig13", nil)
}

// BenchmarkTable4WeakScaling regenerates Table 4 and reports the GoogleNet
// weak-scaling efficiency at 2176 cores (paper: 92.3%).
func BenchmarkTable4WeakScaling(b *testing.B) {
	runExperimentBench(b, "table4", func(r *Report) (string, float64) {
		return "googlenet-eff-2176c", parseSuffixed(r.Tables[0].Cell(5, 2), "%")
	})
}

// BenchmarkBatchSizeImpact regenerates the §7.2 batch-size study.
func BenchmarkBatchSizeImpact(b *testing.B) {
	runExperimentBench(b, "batch", nil)
}

// BenchmarkAblationSyncSteps regenerates the co-design ablation.
func BenchmarkAblationSyncSteps(b *testing.B) {
	runExperimentBench(b, "ablation", nil)
}

// BenchmarkLowPrecision regenerates the §3.4 future-work experiment
// (1-bit/uint8 gradient compression).
func BenchmarkLowPrecision(b *testing.B) {
	runExperimentBench(b, "lowprec", nil)
}

// BenchmarkKNLModes regenerates the MCDRAM/cluster-mode ablation.
func BenchmarkKNLModes(b *testing.B) {
	runExperimentBench(b, "knlmodes", nil)
}

// BenchmarkHierCluster regenerates the hierarchical two-level cluster
// study (collective sweep + hier-sync-sgd/easgd training).
func BenchmarkHierCluster(b *testing.B) {
	runExperimentBench(b, "hier", nil)
}

// ---- substrate micro-benchmarks ----

// BenchmarkLeNetIteration measures one real LeNet forward+backward on a
// batch of 64 (the paper's per-iteration GPU workload, on the host CPU).
func BenchmarkLeNetIteration(b *testing.B) {
	train, _ := SyntheticMNIST(1, 256, 64)
	net := LeNet(Shape{C: 1, H: 28, W: 28}, 10).Build(1)
	batch := 64
	x := train.Images[:batch*train.Spec.SampleDim()]
	labels := train.Labels[:batch]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		net.LossAndGrad(x, labels, batch)
		net.SGDStep(0.01)
	}
}

// BenchmarkTinyCNNIteration measures the experiment stand-in's iteration.
func BenchmarkTinyCNNIteration(b *testing.B) {
	train, _ := SyntheticMNIST(1, 256, 64)
	net := TinyCNN(Shape{C: 1, H: 28, W: 28}, 10).Build(1)
	batch := 32
	x := train.Images[:batch*train.Spec.SampleDim()]
	labels := train.Labels[:batch]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		net.LossAndGrad(x, labels, batch)
		net.SGDStep(0.01)
	}
}

// BenchmarkSyncEASGD3Round measures one full simulated Sync EASGD3 round
// (4 workers, real math plus simulator overhead).
func BenchmarkSyncEASGD3Round(b *testing.B) {
	train, test := SyntheticMNIST(1, 512, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Config{
			Def: TinyCNN(Shape{C: 1, H: 28, W: 28}, 10), Train: train, Test: test,
			Workers: 4, Batch: 32, LR: 0.05, Iterations: 1, Seed: int64(i + 1),
			Platform: DefaultGPUPlatform(true),
		}
		if _, err := Train("sync-easgd3", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeVsLinearReduce measures the collective cost model itself.
func BenchmarkTreeVsLinearReduce(b *testing.B) {
	n := int64(431080 * 4) // LeNet bytes
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += comm.TreeReduceTime(hw.MellanoxFDR, n, 64)
		sink += comm.LinearReduceTime(hw.MellanoxFDR, n, 64)
	}
	_ = sink
}

// BenchmarkModelCostTables measures cost-table construction (used per run).
func BenchmarkModelCostTables(b *testing.B) {
	var params int64
	for i := 0; i < b.N; i++ {
		params += nn.GoogleNetCost().TotalParams()
		params += nn.VGG19Cost().TotalParams()
		params += nn.AlexNetCost().TotalParams()
	}
	_ = params
}

// BenchmarkDiscreteEventThroughput measures raw simulator event throughput
// with the parameter-server pattern (1 master + 4 workers).
func BenchmarkDiscreteEventThroughput(b *testing.B) {
	train, test := SyntheticMNIST(1, 128, 32)
	spec := Config{
		Def: TinyCNN(Shape{C: 1, H: 28, W: 28}, 10), Train: train, Test: test,
		Workers: 4, Batch: 1, LR: 0.05, Iterations: 50, Seed: 1,
		Platform: DefaultGPUPlatform(true),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AsyncSGD(spec); err != nil {
			b.Fatal(err)
		}
	}
}
